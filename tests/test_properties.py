"""Cross-module property-based tests (hypothesis).

These pin the library's global invariants on randomly generated instances:
OPT optimality, ledger accounting identities, trace/scenario conservation
laws, and the consistency between candidate prediction and pricing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms._families import apply_choice, enumerate_choices
from repro.algorithms.onbr import OnBR
from repro.algorithms.onth import OnTH
from repro.algorithms.opt import Opt
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.servercache import InactiveServerCache
from repro.core.simulator import simulate
from repro.core.transitions import price_transition
from repro.topology.generators import line
from repro.workload.base import Trace

SUB = line(5, seed=0, unit_latency=False, latency_range=(5, 20))
SLOW = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_trace(rng, n_nodes=5, rounds=8, max_requests=4):
    return Trace(
        tuple(
            rng.integers(0, n_nodes, size=rng.integers(0, max_requests + 1))
            for _ in range(rounds)
        )
    )


@st.composite
def cost_models(draw):
    beta = draw(st.sampled_from([1.0, 10.0, 40.0, 400.0]))
    creation = draw(st.sampled_from([5.0, 40.0, 400.0]))
    run_active = draw(st.sampled_from([0.5, 2.5, 10.0]))
    return CostModel(
        migration=beta,
        creation=creation,
        run_active=run_active,
        run_inactive=min(0.5, run_active),
    )


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000), costs=cost_models())
def test_opt_lower_bounds_online_policies(seed, costs):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng)
    opt_cost, _ = Opt.solve(SUB, trace, costs)
    for factory in (OnTH, OnBR):
        online = simulate(SUB, factory(), trace, costs, seed=1)
        assert opt_cost <= online.total_cost + 1e-6


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000), costs=cost_models())
def test_ledger_accounting_identity(seed, costs):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=12)
    result = simulate(SUB, OnTH(), trace, costs, seed=2)
    assert result.total_cost == pytest.approx(
        float(
            result.latency_cost.sum()
            + result.load_cost.sum()
            + result.running_cost.sum()
            + result.migration_cost.sum()
            + result.creation_cost.sum()
        )
    )
    # per-round access non-negative; server census sane
    assert (result.access_cost >= 0).all()
    assert (result.n_active >= 1).all()


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000))
def test_opt_cost_monotone_in_horizon(seed):
    """Serving a prefix can never cost more than serving the whole trace."""
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=8, max_requests=3)
    costs = CostModel.paper_default()
    full, _ = Opt.solve(SUB, trace, costs)
    prefix, _ = Opt.solve(SUB, trace.window(0, 4), costs)
    assert prefix <= full + 1e-9


@settings(max_examples=30, **SLOW)
@given(
    seed=st.integers(0, 10_000),
    active=st.sets(st.integers(0, 4), min_size=1, max_size=3),
    cached=st.sets(st.integers(0, 4), max_size=2),
    costs=cost_models(),
)
def test_choice_predictions_match_pricer(seed, active, cached, costs):
    """Family predictions equal pricer charges for arbitrary states."""
    cached = cached - active
    rng = np.random.default_rng(seed)
    rounds = [rng.integers(0, 5, size=3) for _ in range(2)]
    batch = RequestBatch(SUB, costs, rounds)
    config = Configuration.of(active, cached)

    def fresh_cache():
        cache = InactiveServerCache(max_size=3)
        for node in cached:
            cache.push(node)
        return cache

    for choice in enumerate_choices(batch, config, fresh_cache(), costs):
        cache = fresh_cache()
        new_config = apply_choice(choice, config, cache)
        charged = price_transition(config, new_config, costs).cost
        assert charged == pytest.approx(choice.transition_cost), choice.kind


@settings(max_examples=25, **SLOW)
@given(
    seed=st.integers(0, 10_000),
    beta=st.sampled_from([1.0, 40.0, 400.0]),
)
def test_simulated_policy_cost_deterministic(seed, beta):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=10)
    costs = CostModel(migration=beta, creation=100.0, run_inactive=0.5)
    a = simulate(SUB, OnTH(), trace, costs, seed=9).total_cost
    b = simulate(SUB, OnTH(), trace, costs, seed=9).total_cost
    assert a == b


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000))
def test_transition_triangle_inequality_via_intermediate(seed):
    """Direct transition is never dearer than any two-step route."""
    rng = np.random.default_rng(seed)
    costs = CostModel.paper_default()

    def random_config():
        nodes = rng.permutation(5)
        n_act = int(rng.integers(1, 3))
        n_inact = int(rng.integers(0, 2))
        return Configuration(
            tuple(int(v) for v in nodes[:n_act]),
            tuple(int(v) for v in nodes[n_act: n_act + n_inact]),
        )

    a, b, c = random_config(), random_config(), random_config()
    direct = price_transition(a, c, costs).cost
    two_step = price_transition(a, b, costs).cost + price_transition(b, c, costs).cost
    assert direct <= two_step + 1e-9
