"""Cross-module property-based tests (hypothesis).

These pin the library's global invariants on randomly generated instances:
OPT optimality against every online policy, ledger accounting identities
and sign constraints, cost monotonicity in the migration price, spec
serialisation round-trips, trace/scenario conservation laws, and the
consistency between candidate prediction and pricing.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms._families import apply_choice, enumerate_choices
from repro.algorithms.onbr import OnBR
from repro.algorithms.onth import OnTH
from repro.algorithms.opt import Opt
from repro.api.registry import resolve_policy
from repro.api.specs import (
    ComparisonSpec,
    CostSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.servercache import InactiveServerCache
from repro.core.simulator import simulate
from repro.core.transitions import price_transition
from repro.topology.generators import line
from repro.workload.base import Trace

SUB = line(5, seed=0, unit_latency=False, latency_range=(5, 20))
SLOW = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_trace(rng, n_nodes=5, rounds=8, max_requests=4):
    return Trace(
        tuple(
            rng.integers(0, n_nodes, size=rng.integers(0, max_requests + 1))
            for _ in range(rounds)
        )
    )


@st.composite
def cost_models(draw):
    beta = draw(st.sampled_from([1.0, 10.0, 40.0, 400.0]))
    creation = draw(st.sampled_from([5.0, 40.0, 400.0]))
    run_active = draw(st.sampled_from([0.5, 2.5, 10.0]))
    return CostModel(
        migration=beta,
        creation=creation,
        run_active=run_active,
        run_inactive=min(0.5, run_active),
    )


#: Every registered online policy with a no-argument construction — each
#: produces a feasible schedule, so OPT lower-bounds all of them.
_ONLINE_POLICY_KINDS = ("onth", "onbr", "onbr-dyn", "onconf", "wfa")


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000), costs=cost_models())
def test_opt_lower_bounds_online_policies(seed, costs):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng)
    opt_cost, _ = Opt.solve(SUB, trace, costs)
    for kind in _ONLINE_POLICY_KINDS:
        online = simulate(SUB, resolve_policy(kind)(), trace, costs, seed=1)
        assert opt_cost <= online.total_cost + 1e-6, kind


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000), costs=cost_models())
def test_ledger_accounting_identity(seed, costs):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=12)
    result = simulate(SUB, OnTH(), trace, costs, seed=2)
    assert result.total_cost == pytest.approx(
        float(
            result.latency_cost.sum()
            + result.load_cost.sum()
            + result.running_cost.sum()
            + result.migration_cost.sum()
            + result.creation_cost.sum()
        )
    )
    # every ledger component non-negative; server census sane
    for component in ("latency_cost", "load_cost", "running_cost",
                      "migration_cost", "creation_cost", "access_cost",
                      "migrations", "creations", "n_requests"):
        assert (getattr(result, component) >= 0).all(), component
    assert (result.n_active >= 1).all()


@settings(max_examples=20, **SLOW)
@given(
    seed=st.integers(0, 10_000),
    betas=st.lists(
        st.sampled_from([0.0, 1.0, 10.0, 40.0, 100.0, 400.0]),
        min_size=2, max_size=2, unique=True,
    ),
)
def test_opt_cost_monotone_in_migration_cost(seed, betas):
    """Raising β cannot lower the optimum: every schedule's cost is
    non-decreasing in the per-migration price, hence so is the minimum."""
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=8, max_requests=3)
    low, high = sorted(betas)
    cheap, _ = Opt.solve(
        SUB, trace, CostModel(migration=low, creation=100.0, run_inactive=0.5)
    )
    dear, _ = Opt.solve(
        SUB, trace, CostModel(migration=high, creation=100.0, run_inactive=0.5)
    )
    assert cheap <= dear + 1e-9


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000))
def test_opt_cost_monotone_in_horizon(seed):
    """Serving a prefix can never cost more than serving the whole trace."""
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=8, max_requests=3)
    costs = CostModel.paper_default()
    full, _ = Opt.solve(SUB, trace, costs)
    prefix, _ = Opt.solve(SUB, trace.window(0, 4), costs)
    assert prefix <= full + 1e-9


@settings(max_examples=30, **SLOW)
@given(
    seed=st.integers(0, 10_000),
    active=st.sets(st.integers(0, 4), min_size=1, max_size=3),
    cached=st.sets(st.integers(0, 4), max_size=2),
    costs=cost_models(),
)
def test_choice_predictions_match_pricer(seed, active, cached, costs):
    """Family predictions equal pricer charges for arbitrary states."""
    cached = cached - active
    rng = np.random.default_rng(seed)
    rounds = [rng.integers(0, 5, size=3) for _ in range(2)]
    batch = RequestBatch(SUB, costs, rounds)
    config = Configuration.of(active, cached)

    def fresh_cache():
        cache = InactiveServerCache(max_size=3)
        for node in cached:
            cache.push(node)
        return cache

    for choice in enumerate_choices(batch, config, fresh_cache(), costs):
        cache = fresh_cache()
        new_config = apply_choice(choice, config, cache)
        charged = price_transition(config, new_config, costs).cost
        assert charged == pytest.approx(choice.transition_cost), choice.kind


@settings(max_examples=25, **SLOW)
@given(
    seed=st.integers(0, 10_000),
    beta=st.sampled_from([1.0, 40.0, 400.0]),
)
def test_simulated_policy_cost_deterministic(seed, beta):
    rng = np.random.default_rng(seed)
    trace = random_trace(rng, rounds=10)
    costs = CostModel(migration=beta, creation=100.0, run_inactive=0.5)
    a = simulate(SUB, OnTH(), trace, costs, seed=9).total_cost
    b = simulate(SUB, OnTH(), trace, costs, seed=9).total_cost
    assert a == b


@settings(max_examples=20, **SLOW)
@given(seed=st.integers(0, 10_000))
def test_transition_triangle_inequality_via_intermediate(seed):
    """Direct transition is never dearer than any two-step route."""
    rng = np.random.default_rng(seed)
    costs = CostModel.paper_default()

    def random_config():
        nodes = rng.permutation(5)
        n_act = int(rng.integers(1, 3))
        n_inact = int(rng.integers(0, 2))
        return Configuration(
            tuple(int(v) for v in nodes[:n_act]),
            tuple(int(v) for v in nodes[n_act: n_act + n_inact]),
        )

    a, b, c = random_config(), random_config(), random_config()
    direct = price_transition(a, c, costs).cost
    two_step = price_transition(a, b, costs).cost + price_transition(b, c, costs).cost
    assert direct <= two_step + 1e-9


# ---------------------------------------------------------------------------
# Spec serialisation: to_dict -> JSON -> from_dict is lossless
# ---------------------------------------------------------------------------

#: Component/parameter names: non-empty, no surrounding whitespace (specs
#: strip kinds and labels, so padded names would not round-trip verbatim).
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=10
)

#: JSON-safe parameter scalars, plus one level of list nesting (specs
#: freeze sequences to tuples on both construction and from_dict).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**6, 10**6),
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    _names,
)
_params = st.dictionaries(
    _names, st.one_of(_scalars, st.lists(_scalars, max_size=3)), max_size=3
)


@st.composite
def cost_specs(draw):
    load = draw(st.sampled_from(["linear", "quadratic", "power"]))
    run_active = draw(st.floats(0, 100, allow_nan=False))
    return CostSpec(
        migration=draw(st.floats(0, 1e4, allow_nan=False)),
        creation=draw(st.floats(0, 1e4, allow_nan=False)),
        run_active=run_active,
        # the cost model rejects idle servers dearer than active ones
        run_inactive=draw(st.floats(0, run_active, allow_nan=False)),
        wireless_hop=draw(st.floats(0, 10, allow_nan=False)),
        load=load,
        load_exponent=draw(st.floats(1.0, 3.0, allow_nan=False)),
    )


@st.composite
def experiment_specs(draw):
    policies = []
    labels = draw(
        st.lists(_names, min_size=1, max_size=3, unique=True)
    )
    for label in labels:
        policies.append(
            PolicySpec(
                kind=draw(_names),
                params=draw(_params),
                label=label,
                costs=draw(st.none() | cost_specs()),
                scenario=(
                    ScenarioSpec(draw(_names), draw(_params))
                    if draw(st.booleans())
                    else None
                ),
            )
        )
    metric_kinds = draw(st.lists(_names, min_size=1, max_size=2, unique=True))
    return ExperimentSpec(
        topology=TopologySpec(draw(_names), draw(_params)),
        scenario=ScenarioSpec(draw(_names), draw(_params)),
        policies=tuple(policies),
        costs=draw(cost_specs()),
        horizon=draw(st.integers(1, 10_000)),
        routing=draw(st.sampled_from(["nearest", "load_aware"])),
        seed=draw(st.integers(0, 2**31)),
        name=draw(st.one_of(st.just(""), _names)),
        metrics=tuple(MetricSpec(kind, draw(_params)) for kind in metric_kinds),
    )


@st.composite
def replication_specs(draw):
    runs = draw(st.none() | st.integers(1, 10))
    adaptive = draw(st.booleans())
    floor = runs if runs is not None else 1
    if adaptive:
        max_runs = draw(st.integers(floor, 50))
        ci_level = draw(st.floats(0.5, 0.999, allow_nan=False))
        target = draw(st.floats(0.001, 1e3, allow_nan=False))
    else:
        max_runs = draw(st.none() | st.integers(floor, 50))
        ci_level = draw(st.floats(0.0, 0.999, allow_nan=False))
        target = None
    return ReplicationSpec(
        runs=runs,
        max_runs=max_runs,
        ci_level=ci_level,
        target_halfwidth=target,
        relative=draw(st.booleans()),
        batch=draw(st.none() | st.integers(1, 10)),
        method=draw(st.sampled_from(["t", "bootstrap"])),
    )


@st.composite
def comparison_specs(draw, with_target=False):
    baseline = draw(_names)
    contrasts = draw(
        st.just(())
        | st.lists(
            _names.filter(lambda n: n != baseline),
            min_size=1, max_size=2, unique=True,
        ).map(tuple)
    )
    return ComparisonSpec(
        baseline=baseline,
        contrasts=contrasts,
        mode=draw(st.sampled_from(["diff", "ratio"])),
        ci_level=draw(st.floats(0.5, 0.999, allow_nan=False)),
        # a comparison target is only legal on adaptive sweeps
        target_halfwidth=(
            draw(st.none() | st.floats(0.001, 1e3, allow_nan=False))
            if with_target
            else None
        ),
        relative=draw(st.booleans()),
        method=draw(st.sampled_from(["t", "bootstrap"])),
    )


@st.composite
def sweep_specs(draw):
    experiment = draw(experiment_specs())
    shape = draw(st.sampled_from(["none", "horizon", "component", "coupled"]))
    if shape == "none":
        parameter, values = None, draw(
            st.lists(_scalars.filter(lambda v: v is not None),
                     min_size=1, max_size=3).map(tuple)
        )
    elif shape == "horizon":
        parameter = "horizon"
        values = tuple(draw(st.lists(st.integers(1, 1000), min_size=1,
                                     max_size=4)))
    elif shape == "component":
        parameter = f"scenario.{draw(_names)}"
        values = tuple(draw(st.lists(_scalars, min_size=1, max_size=4)))
    else:
        paths = (f"scenario.{draw(_names)}", f"topology.{draw(_names)}")
        values = tuple(
            (draw(_scalars), draw(_scalars))
            for _ in range(draw(st.integers(1, 3)))
        )
        parameter = paths
    replication = draw(st.none() | replication_specs())
    adaptive = replication is not None and replication.adaptive
    return SweepSpec(
        experiment=experiment,
        parameter=parameter,
        values=values,
        runs=draw(st.integers(1, 10)),
        seed=draw(st.integers(0, 2**31)),
        figure=draw(_names),
        title=draw(st.one_of(st.just(""), _names)),
        x_label=draw(st.one_of(st.just(""), _names)),
        notes=draw(st.one_of(st.just(""), _names)),
        replication=replication,
        comparison=draw(
            st.none() | comparison_specs(with_target=adaptive)
        ),
    )


@settings(max_examples=50, **SLOW)
@given(spec=experiment_specs())
def test_experiment_spec_round_trips_losslessly(spec):
    restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert restored.cache_key() == spec.cache_key()


@settings(max_examples=50, **SLOW)
@given(spec=sweep_specs())
def test_sweep_spec_round_trips_losslessly(spec):
    restored = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert restored.cache_key() == spec.cache_key()
    # the restored sweep substitutes points identically
    for value in spec.values:
        assert restored.experiment_at(value) == spec.experiment_at(value)
