"""Tests for the look-ahead variants OFFBR and OFFTH (repro.algorithms.offline_br)."""

import numpy as np
import pytest

from repro.algorithms.offline_br import OffBR, OffTH
from repro.algorithms.onbr import OnBR
from repro.algorithms.onth import OnTH
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


@pytest.fixture
def dear_moves():
    return CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)


@pytest.fixture
def shifting_trace():
    """Demand flips between the two ends of a 9-node path every 25 rounds."""
    rounds = []
    for block in range(4):
        node = 0 if block % 2 == 0 else 8
        rounds.extend([[node, node]] * 25)
    return trace_of(*rounds)


@pytest.fixture
def path9():
    return line(9, seed=0, unit_latency=False, latency_range=(10, 10))


class TestOffBR:
    def test_requires_prepare(self, line5, costs, rng):
        with pytest.raises(RuntimeError, match="prepare"):
            OffBR().reset(line5, costs, rng)

    def test_runs_through_simulator(self, path9, dear_moves, shifting_trace):
        result = simulate(path9, OffBR(), shifting_trace, dear_moves)
        assert result.rounds == len(shifting_trace)

    def test_reacts_promptly_to_every_shift(self, path9, dear_moves, shifting_trace):
        """The upcoming-epoch view reconfigures within a few rounds of a shift."""
        result = simulate(path9, OffBR(), shifting_trace, dear_moves)
        changes = np.nonzero(result.migrations + result.creations)[0]
        for shift in (25, 50, 75):
            assert ((changes >= shift) & (changes <= shift + 6)).any(), shift

    def test_lookahead_wins_when_migration_is_the_only_tool(self, path9):
        """With creation priced out, both can only migrate; foresight helps."""
        cm = CostModel(migration=20, creation=10_000, run_active=1, run_inactive=0.5)
        rounds = [[0, 0]] * 30 + [[8, 8]] * 10
        trace = trace_of(*rounds)
        online = simulate(path9, OnBR(), trace, cm)
        offline = simulate(path9, OffBR(), trace, cm)
        assert offline.total_cost <= online.total_cost * 1.05

    def test_moves_with_the_demand(self, path9, dear_moves, shifting_trace):
        result = simulate(path9, OffBR(), shifting_trace, dear_moves)
        assert result.total_migrations >= 1

    def test_name(self):
        assert OffBR().name == "OFFBR"
        assert OffBR(dynamic_threshold=True).name == "OFFBR-dyn"

    def test_deterministic(self, path9, dear_moves, shifting_trace):
        a = simulate(path9, OffBR(), shifting_trace, dear_moves)
        b = simulate(path9, OffBR(), shifting_trace, dear_moves)
        np.testing.assert_allclose(a.per_round_total, b.per_round_total)


class TestOffTH:
    def test_requires_prepare(self, line5, costs, rng):
        with pytest.raises(RuntimeError, match="prepare"):
            OffTH().reset(line5, costs, rng)

    def test_runs_through_simulator(self, path9, dear_moves, shifting_trace):
        result = simulate(path9, OffTH(), shifting_trace, dear_moves)
        assert result.rounds == len(shifting_trace)

    def test_lookahead_no_worse_than_online_on_shifts(
        self, path9, dear_moves, shifting_trace
    ):
        online = simulate(path9, OnTH(), shifting_trace, dear_moves)
        offline = simulate(path9, OffTH(), shifting_trace, dear_moves)
        assert offline.total_cost <= online.total_cost * 1.05

    def test_name(self):
        assert OffTH().name == "OFFTH"

    def test_allocates_servers_like_onth(self, path9, dear_moves):
        trace = trace_of(*[[0] * 8 + [8] * 8 for _ in range(60)])
        result = simulate(path9, OffTH(), trace, dear_moves)
        assert result.peak_active_servers >= 2

    def test_keeps_one_active_server(self, line5, costs):
        scenario = CommuterScenario(line5, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 60, seed=1)
        result = simulate(line5, OffTH(), trace, costs)
        assert (result.n_active >= 1).all()


class TestLookaheadWindow:
    def test_window_respects_trace_end(self, path9, dear_moves):
        """Decisions near the end of the trace must not run off the edge."""
        trace = trace_of(*[[8, 8]] * 15)
        result = simulate(path9, OffBR(), trace, dear_moves)
        assert result.rounds == 15

    def test_single_round_trace(self, line5, costs):
        trace = trace_of([0])
        result = simulate(line5, OffBR(), trace, costs)
        assert result.rounds == 1
