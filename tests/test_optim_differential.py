"""Differential tests: the time-expanded MILP against OPT and the heuristics.

:class:`~repro.algorithms.optim.MilpOpt` is the harness's *second*
independent optimum — it shares no code with OPT's dynamic program (LP
matrices vs bitmask tables) and none with the brute-force enumeration of
``test_differential.py``.  On tiny instances all three must coincide
**bit-for-bit**: the MILP replays its plan through the simulator's scalar
pricing primitives in the exact summation order of the enumeration, so the
comparison is ``==`` on floats, not an approx.

With binding per-node capacities the chain of bounds is tested instead:

    uncapacitated OPT  ≤  capacitated MILP  ≤  every capacity-feasible
                                               heuristic (per shared trace)

Examples are derandomised: hypothesis draws the same instances on every
run, so the bit-for-bit assertions cannot flake on a fresh near-tie.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.opt import Opt
from repro.algorithms.optim import MilpOpt, plan_cost
from repro.algorithms.static import StaticPolicy
from repro.api.registry import resolve_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy
from repro.core.routing import route_requests
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace

from test_differential import (
    _LINE_PARAMS,
    _ONLINE_POLICY_KINDS,
    brute_force_optimal,
    random_trace,
)

#: Same examples every run — bit-for-bit float equality must not flake.
EXACT = dict(deadline=None, derandomize=True)


class TestMilpAgainstBruteForce:
    @settings(max_examples=10, **EXACT)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(1, 5),
        beta=st.sampled_from([40.0, 400.0]),
        creation=st.sampled_from([40.0, 400.0]),
    )
    def test_two_node_line_bit_for_bit(self, seed, rounds, beta, creation):
        substrate = line(2, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, 2, rounds)
        costs = CostModel(migration=beta, creation=creation,
                          run_active=2.5, run_inactive=0.5)
        expected = brute_force_optimal(substrate, trace, costs)
        milp_cost, plan = MilpOpt.solve(substrate, trace, costs)
        assert milp_cost == expected  # bit-for-bit: shared scalar pricing
        assert len(plan) == len(trace)

    @settings(max_examples=8, **EXACT)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(1, 3),
        beta=st.sampled_from([40.0, 400.0]),
    )
    def test_three_node_line_bit_for_bit(self, seed, rounds, beta):
        substrate = line(3, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, 3, rounds)
        costs = CostModel(migration=beta, creation=440.0 - beta,
                          run_active=2.5, run_inactive=0.5)
        expected = brute_force_optimal(substrate, trace, costs)
        milp_cost, _plan = MilpOpt.solve(substrate, trace, costs)
        assert milp_cost == expected

    @settings(max_examples=10, **EXACT)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(1, 5),
        expensive=st.booleans(),
    )
    def test_milp_equals_opt_dp(self, seed, rounds, expensive):
        """The two independent optima agree.

        Up to float associativity only: the DP folds its vectorised cost
        tables in a different summation order than the scalar replay, so
        this is an approx — the **bit-for-bit** guarantee is against the
        brute-force enumeration, which shares the replay's exact order.
        """
        substrate = line(3, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, 3, rounds)
        costs = (
            CostModel.migration_expensive() if expensive
            else CostModel.paper_default()
        )
        milp_cost, _ = MilpOpt.solve(substrate, trace, costs)
        opt_cost, _ = Opt.solve(substrate, trace, costs)
        assert milp_cost == pytest.approx(opt_cost, rel=1e-9)

    def test_simulated_milp_ledger_matches_solve(self):
        """Replaying the plan as an OfflinePolicy reproduces the solve cost."""
        substrate = line(3, seed=4, **_LINE_PARAMS)
        rng = np.random.default_rng(4)
        trace = random_trace(rng, 3, 5)
        costs = CostModel.paper_default()
        milp_cost, _ = MilpOpt.solve(substrate, trace, costs)
        result = simulate(substrate, MilpOpt(), trace, costs, seed=0)
        assert result.total_cost == pytest.approx(milp_cost, rel=1e-9)
        assert result.policy_name == "MILP-OPT"


def capacitated_trace(rng, n_nodes, rounds) -> Trace:
    """Rounds that are always packable under unit capacities on ``n`` nodes.

    Round 0 carries exactly one request (it is served by the single start
    server alone, so it must fit that node's capacity of 1); later rounds
    carry 1..n requests at *distinct* access points — so opening every node
    absorbs any round, yet unit capacities bind whenever a round carries
    more requests than there are active servers.
    """
    first = rng.integers(0, n_nodes, size=1)
    rest = (
        rng.permutation(n_nodes)[: rng.integers(1, n_nodes + 1)]
        for _ in range(rounds - 1)
    )
    return Trace((first, *rest))


def _nearest_feasible(substrate, trace, plan, start, capacities) -> bool:
    """Whether the plan's nearest-routing assignment fits the capacities."""
    previous = Configuration.single(start)
    for t in range(len(trace)):
        requests = np.asarray(trace[t], dtype=np.int64)
        if requests.size:
            servers = np.asarray(previous.active, dtype=np.int64)
            routing = route_requests(
                substrate, servers, requests, CostModel.paper_default()
            )
            for server, count in zip(servers, routing.counts):
                if count > capacities[server]:
                    return False
        previous = plan[t]
    return True


class _RecordingPolicy(AllocationPolicy):
    """Wrap an online policy and record the configuration sequence it plays."""

    def __init__(self, inner: AllocationPolicy) -> None:
        self._inner = inner
        self.start: "Configuration | None" = None
        self.plan: "list[Configuration]" = []

    @property
    def name(self) -> str:
        return self._inner.name

    def reset(self, substrate, costs, rng):
        self.start = self._inner.reset(substrate, costs, rng)
        self.plan = []
        return self.start

    def decide(self, t, requests, routing):
        config = self._inner.decide(t, requests, routing)
        self.plan.append(config)
        return config


class TestCapacitatedBounds:
    @settings(max_examples=10, **EXACT)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(2, 5),
        expensive=st.booleans(),
    )
    def test_capacitated_milp_bounds_uncapacitated_opt(
        self, seed, rounds, expensive
    ):
        """Adding a packing constraint can only raise the optimum."""
        substrate = line(3, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = capacitated_trace(rng, 3, rounds)
        costs = (
            CostModel.migration_expensive() if expensive
            else CostModel.paper_default()
        )
        uncap_cost, _ = Opt.solve(substrate, trace, costs)
        cap_cost, plan = MilpOpt.solve(
            substrate, trace, costs, node_capacity=1.0
        )
        assert cap_cost >= uncap_cost - 1e-6
        # the capacitated plan really spreads servers: with unit capacities
        # a k-request round needs >= k active servers the round before
        for t in range(1, len(trace)):
            assert plan[t - 1].n_active >= len(trace[t])

    @settings(max_examples=8, **EXACT)
    @given(seed=st.integers(0, 10_000), rounds=st.integers(2, 5))
    def test_feasible_heuristics_dominate_capacitated_milp(self, seed, rounds):
        """Every capacity-feasible heuristic replicate costs >= the MILP.

        The MILP (``require_active=False`` — the weakest feasible set, so
        the bound holds for any heuristic plan) minimises over exactly the
        plans a policy could play; a heuristic whose nearest-routing
        assignment fits the unit capacities is one such plan, so its
        replayed cost can never beat the optimum.
        """
        substrate = line(3, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = capacitated_trace(rng, 3, rounds)
        costs = CostModel.paper_default()
        capacities = np.ones(substrate.n)
        milp_cost, _ = MilpOpt.solve(
            substrate, trace, costs,
            node_capacity=1.0, require_active=False,
        )
        start = substrate.center
        checked = 0
        # the no-arg online heuristics, plus an all-active static fleet —
        # the latter is always capacity-feasible on distinct-point rounds
        # (every request is served at its own node), so the invariant below
        # is guaranteed to be exercised at least once per example.
        policies = [resolve_policy(kind)() for kind in _ONLINE_POLICY_KINDS]
        policies.append(
            StaticPolicy(Configuration(tuple(range(substrate.n))))
        )
        for policy in policies:
            kind = policy.name
            recorder = _RecordingPolicy(policy)
            simulate(substrate, recorder, trace, costs, seed=0)
            if recorder.start != Configuration.single(start):
                continue  # different γ0: not comparable to this MILP
            if not _nearest_feasible(
                substrate, trace, recorder.plan, start, capacities
            ):
                continue  # capacity-infeasible replicate: bound is vacuous
            heuristic_cost = plan_cost(
                substrate, trace, costs, recorder.plan, start_node=start
            )
            assert heuristic_cost >= milp_cost - 1e-6, kind
            checked += 1
        assert checked >= 1  # the invariant is exercised, not vacuous
