"""Tests for the inactive-server FIFO cache (repro.core.servercache)."""

import pytest

from repro.core.servercache import InactiveServerCache


class TestPush:
    def test_fifo_order(self):
        cache = InactiveServerCache(max_size=3)
        cache.push(1)
        cache.push(2)
        cache.push(3)
        assert cache.nodes == (1, 2, 3)  # oldest first

    def test_eviction_when_full(self):
        cache = InactiveServerCache(max_size=2)
        cache.push(1)
        cache.push(2)
        evicted = cache.push(3)
        assert evicted == 1
        assert cache.nodes == (2, 3)

    def test_no_eviction_below_capacity(self):
        cache = InactiveServerCache(max_size=2)
        assert cache.push(1) is None

    def test_rejects_duplicate_node(self):
        cache = InactiveServerCache()
        cache.push(5)
        with pytest.raises(ValueError, match="already"):
            cache.push(5)


class TestPopAndRemove:
    def test_pop_oldest(self):
        cache = InactiveServerCache()
        cache.push(7)
        cache.push(8)
        assert cache.pop_oldest() == 7
        assert cache.nodes == (8,)

    def test_pop_empty_returns_none(self):
        assert InactiveServerCache().pop_oldest() is None

    def test_remove_specific(self):
        cache = InactiveServerCache()
        cache.push(1)
        cache.push(2)
        cache.push(3)
        assert cache.remove(2)
        assert cache.nodes == (1, 3)

    def test_remove_missing_returns_false(self):
        cache = InactiveServerCache()
        cache.push(1)
        assert not cache.remove(9)

    def test_contains_and_len(self):
        cache = InactiveServerCache()
        cache.push(4)
        assert 4 in cache and 5 not in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = InactiveServerCache()
        cache.push(1)
        cache.clear()
        assert len(cache) == 0


class TestExpiry:
    def test_entries_expire_after_configured_epochs(self):
        cache = InactiveServerCache(max_size=3, expiry_epochs=2)
        cache.push(1)
        assert cache.tick_epoch() == []  # age 1
        assert cache.tick_epoch() == [1]  # age 2 -> expired
        assert len(cache) == 0

    def test_ages_tracked_per_entry(self):
        cache = InactiveServerCache(max_size=3, expiry_epochs=2)
        cache.push(1)
        cache.tick_epoch()
        cache.push(2)
        expired = cache.tick_epoch()
        assert expired == [1]
        assert cache.nodes == (2,)

    def test_push_resets_age_for_new_entry_only(self):
        cache = InactiveServerCache(max_size=3, expiry_epochs=3)
        cache.push(1)
        cache.tick_epoch()
        cache.tick_epoch()
        cache.push(2)
        expired = cache.tick_epoch()
        assert expired == [1]
        assert 2 in cache

    def test_paper_defaults(self):
        cache = InactiveServerCache()
        assert cache.max_size == 3
        assert cache.expiry_epochs == 20


class TestValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError, match="max_size"):
            InactiveServerCache(max_size=0)

    def test_rejects_zero_expiry(self):
        with pytest.raises(ValueError, match="expiry_epochs"):
            InactiveServerCache(expiry_epochs=0)
