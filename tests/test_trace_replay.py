"""Trace replay: external request logs as first-class scenarios."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import OnTH, Opt, TraceReplayScenario, simulate
from repro.api.cache import ResultCache, scenario_content_fingerprint
from repro.api.experiment import run_experiment
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.traces.replay import (
    file_digest,
    infer_format,
    iter_records,
    make_mapper,
    replay_stats,
    rounds_from_records,
)
from repro.workload.base import Trace, generate_trace

SAMPLE = Path(__file__).parent / "data" / "sample_requests.csv"


@pytest.fixture
def csv_log(tmp_path):
    path = tmp_path / "requests.csv"
    path.write_text(
        "round,node\n"
        "0,web-1\n0,web-2\n"
        "1,web-1\n1,web-3\n"
        "3,web-2\n3,web-2\n"
        "4,web-4\n"
    )
    return path


@pytest.fixture
def jsonl_log(tmp_path):
    path = tmp_path / "requests.jsonl"
    records = [
        {"t": 0.5, "server": "a"},
        {"t": 1.2, "server": "b"},
        {"t": 2.9, "server": "a"},
    ]
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


class TestReaders:
    def test_infer_format(self):
        assert infer_format("x.csv") == "csv"
        assert infer_format("x.jsonl") == "jsonl"
        assert infer_format("x.ndjson") == "jsonl"
        assert infer_format("x.npz") == "npz"
        with pytest.raises(ValueError, match="infer"):
            infer_format("x.log")

    def test_csv_records(self, csv_log):
        records = list(iter_records(csv_log))
        assert records[0] == (0.0, "web-1")
        assert len(records) == 7

    def test_csv_missing_column_is_clear(self, csv_log):
        with pytest.raises(ValueError, match="no column 'server'"):
            list(iter_records(csv_log, node_field="server"))

    def test_jsonl_records(self, jsonl_log):
        records = list(
            iter_records(jsonl_log, node_field="server", round_field="t")
        )
        assert records == [(0.5, "a"), (1.2, "b"), (2.9, "a")]

    def test_jsonl_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"node": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(iter_records(path))

    def test_npz_records(self, tmp_path, tiny_trace):
        saved = tiny_trace.save(tmp_path / "t.npz")
        records = list(iter_records(saved))
        assert len(records) == tiny_trace.total_requests
        assert records[0] == (0.0, 0)


class TestMapping:
    def test_hash_is_stable_and_total(self):
        mapper = make_mapper("hash", np.arange(4))
        keys = ["web-%d" % i for i in range(50)]
        first = [mapper(k) for k in keys]
        assert first == [mapper(k) for k in keys]
        assert all(0 <= node < 4 for node in first)

    def test_round_robin_first_appearance_order(self):
        mapper = make_mapper("round_robin", np.array([10, 20, 30]))
        assert [mapper(k) for k in ("c", "a", "c", "b", "d")] == [
            10, 20, 10, 30, 10,
        ]

    def test_table_mapping_and_unknown_key(self):
        mapper = make_mapper(
            "table", np.arange(5), table={"a": 2, "b": 0}
        )
        assert mapper("a") == 2
        with pytest.raises(ValueError, match="not in the mapping table"):
            mapper("zzz")

    def test_table_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            make_mapper("table", np.arange(3), table={"a": 7})

    def test_identity_rejects_raw_keys(self):
        mapper = make_mapper("none", np.arange(3))
        assert mapper("2") == 2
        with pytest.raises(ValueError, match="integer node indices"):
            mapper("web-1")

    def test_unknown_mapping(self):
        with pytest.raises(ValueError, match="unknown mapping"):
            make_mapper("magic", np.arange(3))


class TestRoundsFromRecords:
    def test_gaps_become_empty_rounds(self):
        rounds = list(
            rounds_from_records([(0, 1), (0, 2), (3, 0)], mapper=int)
        )
        assert [list(r) for r in rounds] == [[1, 2], [], [], [0]]

    def test_out_of_order_raises_with_sort_hint(self):
        with pytest.raises(ValueError, match="sort"):
            list(rounds_from_records([(2, 1), (0, 1)], mapper=int))

    def test_sort_materialises_and_orders(self):
        rounds = list(
            rounds_from_records([(2, 1), (0, 3), (0, 2)], mapper=int, sort=True)
        )
        assert [list(r) for r in rounds] == [[3, 2], [], [1]]

    def test_requests_per_round_batching(self):
        records = [(None, i) for i in range(5)]
        rounds = list(
            rounds_from_records(records, mapper=int, requests_per_round=2)
        )
        assert [list(r) for r in rounds] == [[0, 1], [2, 3], [4]]

    def test_round_duration_buckets_timestamps(self):
        records = [(0.1, 0), (0.9, 1), (2.5, 2)]
        rounds = list(
            rounds_from_records(records, mapper=int, round_duration=1.0)
        )
        assert [list(r) for r in rounds] == [[0, 1], [], [2]]

    def test_missing_round_value_is_clear(self):
        with pytest.raises(ValueError, match="requests_per_round"):
            list(rounds_from_records([(None, 0)], mapper=int))

    def test_limit(self):
        records = [(t, t) for t in range(6)]
        rounds = list(rounds_from_records(records, mapper=int, limit=2))
        assert len(rounds) == 2


class TestScenario:
    def test_generate_matches_stream(self, line5, csv_log):
        scenario = TraceReplayScenario(line5, path=str(csv_log))
        trace = scenario.generate(12, None)
        for a, b in zip(trace, scenario.stream(12)):
            np.testing.assert_array_equal(a, b)

    def test_cycle_extends(self, line5, csv_log):
        scenario = TraceReplayScenario(line5, path=str(csv_log))
        trace = scenario.generate(12, None)
        np.testing.assert_array_equal(trace[5], trace[0])
        np.testing.assert_array_equal(trace[10], trace[0])

    def test_pad_extends_with_empty_rounds(self, line5, csv_log):
        scenario = TraceReplayScenario(line5, path=str(csv_log), extend="pad")
        trace = scenario.generate(8, None)
        assert trace[5].size == trace[7].size == 0

    def test_error_extend_raises(self, line5, csv_log):
        scenario = TraceReplayScenario(line5, path=str(csv_log), extend="error")
        with pytest.raises(ValueError, match="horizon needs 8"):
            scenario.generate(8, None)

    def test_round_robin_assignments_survive_cycling(self, line5, csv_log):
        scenario = TraceReplayScenario(
            line5, path=str(csv_log), mapping="round_robin"
        )
        trace = scenario.generate(10, None)
        np.testing.assert_array_equal(trace[5], trace[0])

    def test_npz_defaults_to_identity_mapping(self, line5, tmp_path, tiny_trace):
        saved = tiny_trace.save(tmp_path / "t.npz")
        scenario = TraceReplayScenario(line5, path=str(saved))
        assert scenario.mapping == "none"
        trace = scenario.generate(len(tiny_trace), None)
        for a, b in zip(trace, tiny_trace):
            np.testing.assert_array_equal(a, b)

    def test_out_of_substrate_nodes_rejected(self, line5, tmp_path):
        path = tmp_path / "big.csv"
        path.write_text("round,node\n0,99\n")
        scenario = TraceReplayScenario(line5, path=str(path), mapping="none")
        with pytest.raises(ValueError, match="outside the substrate"):
            scenario.generate(1, None)

    def test_empty_log_rejected(self, line5, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("round,node\n")
        scenario = TraceReplayScenario(line5, path=str(path))
        with pytest.raises(ValueError, match="no rounds"):
            scenario.generate(3, None)

    def test_missing_path_rejected(self, line5):
        with pytest.raises(ValueError, match="path"):
            TraceReplayScenario(line5)

    def test_metadata_carries_digest(self, line5, csv_log):
        trace = TraceReplayScenario(line5, path=str(csv_log)).generate(5, None)
        assert trace.metadata["sha256"] == file_digest(csv_log)["sha256"]


class TestEndToEnd:
    def test_sample_log_simulates_and_scores_vs_opt(self, line5):
        scenario = TraceReplayScenario(line5, path=str(SAMPLE))
        trace = generate_trace(scenario, 24, seed=0)
        result = simulate(line5, OnTH(), trace)
        opt_cost, _ = Opt.solve(line5, trace)
        assert 0 < opt_cost <= result.total_cost

    def test_replay_through_declarative_spec(self):
        spec = ExperimentSpec(
            topology=TopologySpec("line", {"n": 5}),
            scenario=ScenarioSpec("replay", {"path": str(SAMPLE)}),
            policies=(PolicySpec("onth"),),
            horizon=24,
        )
        result = run_experiment(spec)
        assert result.results["ONTH"].total_cost > 0


class TestContentFingerprint:
    def test_digest_memoized_until_content_changes(self, csv_log):
        first = file_digest(csv_log)
        assert file_digest(csv_log) == first
        csv_log.write_text("round,node\n0,other\n")
        assert file_digest(csv_log)["sha256"] != first["sha256"]

    def test_fingerprint_none_for_non_file_scenarios(self):
        assert scenario_content_fingerprint("commuter", {"sojourn": 5}) is None
        assert scenario_content_fingerprint("not-a-scenario", {}) is None

    def test_replay_fingerprint_tracks_file(self, csv_log):
        fp = scenario_content_fingerprint("replay", {"path": str(csv_log)})
        assert fp["sha256"] == file_digest(csv_log)["sha256"]

    def test_streaming_delegates_to_inner(self, csv_log):
        fp = scenario_content_fingerprint(
            "streaming", {"scenario": "replay", "params": {"path": str(csv_log)}}
        )
        assert fp["sha256"] == file_digest(csv_log)["sha256"]

    def test_overlay_delegates_to_parts(self, csv_log):
        fp = scenario_content_fingerprint(
            "overlay",
            {
                "parts": [
                    "commuter",
                    {"kind": "replay", "params": {"path": str(csv_log)}},
                ]
            },
        )
        assert fp == [{"scenario": "replay", **file_digest(csv_log)}]

    def test_cache_key_changes_when_file_changes(self, tmp_path, csv_log):
        spec = SweepSpec(
            experiment=ExperimentSpec(
                topology=TopologySpec("line", {"n": 5}),
                scenario=ScenarioSpec("replay", {"path": str(csv_log)}),
                policies=(PolicySpec("onth"),),
                horizon=6,
            ),
            runs=1,
        )
        cache = ResultCache(tmp_path / "cache")
        before_sweep = cache.key_for(spec)
        before_point = cache.key_for_point(spec.experiment, 0, 0, 1)
        csv_log.write_text("round,node\n0,changed\n1,changed\n")
        assert cache.key_for(spec) != before_sweep
        assert cache.key_for_point(spec.experiment, 0, 0, 1) != before_point

    def test_cache_key_stable_for_synthetic_scenarios(self, tmp_path):
        spec = SweepSpec(
            experiment=ExperimentSpec(
                topology=TopologySpec("line", {"n": 5}),
                scenario=ScenarioSpec("commuter", {"sojourn": 2, "period": 4}),
                policies=(PolicySpec("onth"),),
                horizon=6,
            ),
            runs=1,
        )
        cache = ResultCache(tmp_path / "cache")
        assert cache.key_for(spec) == cache.key_for(spec)


class TestStats:
    def test_replay_stats_shape(self, line5, csv_log):
        scenario = TraceReplayScenario(line5, path=str(csv_log))
        stats = replay_stats(scenario.generate(5, None))
        assert stats["rounds"] == 5
        assert stats["total_requests"] == 7
        assert stats["nonempty_rounds"] == 4
        assert stats["requests_per_round"]["max"] == 2
        assert stats["busiest_nodes"][0]["requests"] >= 1
