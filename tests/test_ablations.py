"""Smoke tests for the ablation experiments (scaled-down parameters)."""

import numpy as np
import pytest

from repro.experiments import ablations


class TestRoutingAblation:
    def test_load_aware_never_worse(self):
        result = ablations.ablation_routing(
            sizes=(30,), horizon=60, sojourn=5, runs=2, seed=0
        )
        near = result.y("nearest")
        aware = result.y("load-aware")
        # load-aware routing can only help under convex load
        assert aware[0] <= near[0] * 1.02


class TestCacheAblation:
    def test_structure(self):
        result = ablations.ablation_cache_size(
            cache_sizes=(1, 3), n=40, horizon=80, sojourn=5, runs=2, seed=1
        )
        assert result.x_values == (1, 3)
        assert set(result.series) == {"ONTH", "ONBR"}
        assert all(np.isfinite(result.y("ONTH")))


class TestThresholdAblation:
    def test_structure(self):
        result = ablations.ablation_threshold(
            factors=(1.0, 4.0), n=40, horizon=80, sojourn=5, runs=2, seed=2
        )
        assert result.x_values == (1.0, 4.0)
        assert all(v > 0 for v in result.y("ONBR total"))


class TestMigrationModelAblation:
    def test_both_models_run(self):
        result = ablations.ablation_migration_model(
            horizon=60, sojourn=5, period=4, requests_per_round=5, runs=2, seed=3
        )
        assert set(result.series) == {"constant β", "bandwidth β(u,v)"}
        for name in result.series_names:
            assert result.y(name)[0] > 0


class TestMobilityAblation:
    def test_adaptivity_gap_reported(self):
        result = ablations.ablation_mobility_correlation(
            correlations=(0.0, 1.0), n=40, n_users=8, horizon=100, runs=2, seed=4
        )
        assert set(result.series) == {"ONTH", "OFFSTAT", "OFFSTAT/ONTH"}
        ratios = result.y("OFFSTAT/ONTH")
        assert all(np.isfinite(ratios))


class TestBetaOverCAblation:
    def test_migrations_vanish_beyond_parity(self):
        result = ablations.ablation_beta_over_c(
            ratios=(0.1, 1.0, 10.0), n=50, horizon=200, runs=2, seed=5
        )
        migrations = dict(zip(result.x_values, result.y("migrations")))
        # β/c > 1: the pricer never migrates (§II-C model invariant)
        assert migrations[10.0] == 0.0
        assert all(v > 0 for v in result.y("ONTH total"))
