"""Dead-worker recovery: a SIGKILLed worker's lease expires and its task
is re-served, and the final figure is still bit-identical to serial.

This is the queue subsystem's headline guarantee exercised for real — two
OS worker processes against one queue file, one of them killed with
``SIGKILL`` (no cleanup, no goodbye) while it holds a lease.
"""

import os
import signal
import subprocess
import sys
import time

from repro.api.cache import ResultCache
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.queue.broker import Broker
from repro.queue.worker import enqueue_sweep


def recovery_sweep() -> SweepSpec:
    # horizon is deliberately large: each point must run long enough
    # (~seconds) that the kill reliably lands mid-lease
    return SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=400,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=3,
        seed=1,
        figure="t",
    )


def spawn_worker(queue, cache_dir, *extra):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            "--queue",
            str(queue),
            "--cache-dir",
            str(cache_dir),
            "--poll",
            "0.02",
            *extra,
        ],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_lease(broker, timeout=60.0):
    """Block until some task is leased; returns the leased task row."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for state in broker.jobs():
            for task in broker.tasks_for(state["job"]):
                if task["status"] == "leased":
                    return task
        time.sleep(0.005)
    raise AssertionError("no task was ever leased")


def test_sigkilled_worker_loses_no_work(tmp_path):
    queue = tmp_path / "queue.db"
    cache_dir = tmp_path / "cache"
    spec = recovery_sweep()
    serial = run_sweep(spec)

    broker = Broker(queue)
    job_id = enqueue_sweep(broker, ResultCache(cache_dir), spec)["job"]

    # worker 1 takes a lease with a short ttl; kill it mid-task
    victim = spawn_worker(queue, cache_dir, "--ttl", "0.5")
    try:
        leased = wait_for_lease(broker)
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL
    victim_worker = leased["worker"]

    # worker 2 outlives the lease, re-serves the orphaned task, drains the
    # job and assembles the figure, then exits idle
    survivor = spawn_worker(queue, cache_dir, "--ttl", "30", "--idle-exit", "2")
    _, err = survivor.communicate(timeout=300)
    assert survivor.returncode == 0, err

    state = broker.job_state(job_id)
    assert state["status"] == "done", state
    tasks = broker.tasks_for(job_id)
    assert all(task["status"] == "done" for task in tasks)

    # the killed lease really was re-served: its task finished under a new
    # attempt or a different worker, and the worker log shows the handoff
    recovered = next(task for task in tasks if task["id"] == leased["id"])
    assert recovered["attempts"] >= 2 or recovered["worker"] != victim_worker

    # and none of it cost correctness: bit-identical to the serial run
    assembled = ResultCache(cache_dir).load(spec)
    assert assembled is not None
    assert assembled.to_dict() == serial.to_dict()
