"""Resumable + sharded sweep execution (the per-point cache path).

The contract: serial, process-pool and shard-then-assemble execution of
one spec are bit-identical — pinned here against the golden regression
data, so the per-point cache cannot drift from the pre-cache results —
and a sweep interrupted or invalidated for a subset of points re-runs
only the missing points.
"""

import json
from pathlib import Path

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.experiments import figures

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_figures.json").read_text()
)

#: The golden fig03 parameterisation (tuples where JSON stored lists).
FIG03_PARAMS = dict(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)


class CountingBackend(ExecutionBackend):
    """Serial execution that records how many tasks each batch scheduled."""

    def __init__(self):
        self.batches = []

    def run_replicates(self, replicate, tasks, on_result=None):
        self.batches.append(len(tasks))
        return SerialBackend().run_replicates(replicate, tasks, on_result)


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5, 9),
        runs=2,
        seed=1,
        figure="t",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestGoldenFigureAcrossExecutionModes:
    """Acceptance: serial == pool == 2-shard-then-assemble on golden fig03."""

    def test_serial_pool_and_sharded_assembly_bit_identical(self, tmp_path):
        golden = GOLDEN["fig03"]["result"]
        serial = figures.figure03(**FIG03_PARAMS)
        assert serial.to_dict() == golden

        pool = figures.figure03(**FIG03_PARAMS, backend=ProcessPoolBackend(2))
        assert pool == serial

        for index in range(2):
            last = figures.figure03(
                **FIG03_PARAMS, cache=ResultCache(tmp_path), shard=(index, 2)
            )
        # the second shard found the cache complete and assembled in full
        assert last == serial

        assembler = ResultCache(tmp_path)
        assembled = figures.figure03(**FIG03_PARAMS, cache=assembler)
        assert assembled.to_dict() == golden
        assert assembler.hits == 1  # a pure cache read, nothing simulated


class TestResume:
    def test_interrupted_sweep_recomputes_only_missing_points(self, tmp_path):
        spec = small_sweep()
        # "Interrupt" after one shard's worth of points.
        run_sweep(spec, cache=ResultCache(tmp_path), shard=(0, 2))
        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        resumed = run_sweep(spec, backend=counting, cache=cache)
        # points 0 and 2 were cached by the shard; only point 1 runs
        assert counting.batches == [spec.runs]
        assert cache.point_hits == 2 and cache.point_stores == 1
        assert resumed == run_sweep(spec)

    def test_invalidated_point_recomputes_alone(self, tmp_path):
        spec = small_sweep()
        first_cache = ResultCache(tmp_path)
        baseline = run_sweep(spec, cache=first_cache)
        # Invalidate the middle point (and the sweep entry that would
        # otherwise short-circuit the probe).
        point = spec.experiment_at(spec.values[1])
        key = first_cache.key_for_point(point, spec.seed, spec.runs, spec.runs)
        first_cache.path_for_key(key).unlink()
        first_cache.path_for(spec).unlink()

        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        again = run_sweep(spec, backend=counting, cache=cache)
        assert counting.batches == [spec.runs]
        assert cache.point_hits == 2
        assert again == baseline

    def test_grid_extended_at_the_tail_reuses_prefix_points(self, tmp_path):
        spec = small_sweep(values=(2, 5))
        run_sweep(spec, cache=ResultCache(tmp_path))
        extended = small_sweep(values=(2, 5, 9))
        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        result = run_sweep(extended, backend=counting, cache=cache)
        # the two common points share keys with the shorter sweep's entries
        assert counting.batches == [extended.runs]
        assert cache.point_hits == 2
        assert result == run_sweep(extended)

    def test_no_resume_writes_no_point_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_sweep(small_sweep(), cache=cache, resume=False)
        assert cache.point_stores == 0 and cache.point_misses == 0
        assert cache.stats()["kinds"] == {"sweep": 1}
        assert result == run_sweep(small_sweep())


class TestShardSemantics:
    def test_shard_needs_a_cache(self):
        with pytest.raises(ValueError, match="shared cache"):
            run_sweep(small_sweep(), shard=(0, 2))

    def test_shard_needs_resume(self, tmp_path):
        # resume=False would silently compute the full sweep in every
        # shard process; shards coordinate only through point entries.
        with pytest.raises(ValueError, match="resume"):
            run_sweep(
                small_sweep(), cache=ResultCache(tmp_path),
                shard=(0, 2), resume=False,
            )

    @pytest.mark.parametrize("shard", [(2, 2), (-1, 2), (0, 0), ("a", 2), (1,)])
    def test_invalid_shards_are_rejected(self, shard):
        with pytest.raises(ValueError, match="shard"):
            run_sweep(small_sweep(), shard=shard)

    def test_single_shard_is_an_unsharded_run(self, tmp_path):
        # (0, 1) normalises away entirely — no cache requirement.
        assert run_sweep(small_sweep(), shard=(0, 1)) == run_sweep(small_sweep())

    def test_partial_shard_returns_its_points_only(self, tmp_path):
        spec = small_sweep()
        cache = ResultCache(tmp_path)
        partial = run_sweep(spec, cache=cache, shard=(1, 2))
        assert partial.x_values == (5,)  # point index 1 of (2, 5, 9)
        assert "partial" in partial.notes and "shard 2/2" in partial.notes
        # no sweep-level entry was stored for a partial result
        assert cache.stores == 0
        serial = run_sweep(spec)
        assert partial.series == {
            name: (serial.series[name][1],) for name in serial.series_names
        }

    def test_shards_cover_all_points_disjointly(self, tmp_path):
        spec = small_sweep(values=(2, 4, 6, 8, 10))
        serial = run_sweep(spec)
        for index in range(3):
            counting = CountingBackend()
            cache = ResultCache(tmp_path)
            run_sweep(spec, backend=counting, cache=cache, shard=(index, 3))
            # every shard computed only its own points, never a neighbour's
            expected = len(range(index, len(spec.values), 3)) * spec.runs
            assert counting.batches == [expected]
        cache = ResultCache(tmp_path)
        assert run_sweep(cache=cache, spec=spec) == serial

    def test_coupled_sweep_shards_keep_display_x(self, tmp_path):
        spec = small_sweep(
            parameter=("topology.n", "scenario.sojourn"),
            values=((30, 2), (40, 5)),
        )
        serial = run_sweep(spec)
        assert serial.x_values == (30, 40)
        partial = run_sweep(spec, cache=ResultCache(tmp_path), shard=(1, 2))
        assert partial.x_values == (40,)
        full = run_sweep(spec, cache=ResultCache(tmp_path))
        assert full == serial
