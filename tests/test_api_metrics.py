"""Tests for the metric pipeline: registry, built-ins, spec integration."""

import json

import numpy as np
import pytest

from repro.api.experiment import (
    resolve_series_labels,
    run_experiment,
    run_replicate,
    run_sweep,
)
from repro.api.metrics import MetricContext, evaluate_metrics
from repro.api.registry import (
    METRICS,
    UnknownNameError,
    list_metrics,
    resolve_metric,
)
from repro.api.specs import (
    CostSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)


def line_experiment(**overrides) -> ExperimentSpec:
    """A tiny line-graph spec OPT can solve quickly."""
    defaults = dict(
        topology=TopologySpec(
            "line", {"n": 4, "unit_latency": False, "latency_range": (5.0, 20.0)}
        ),
        scenario=ScenarioSpec("commuter", {"period": 4, "sojourn": 5}),
        policies=(PolicySpec("onth", label="ONTH"),),
        horizon=30,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestMetricRegistry:
    def test_builtins_registered(self):
        names = list_metrics()
        for expected in ("total_cost", "cost_ratio_vs", "cost_breakdown",
                         "per_round_average", "reference_cost"):
            assert expected in names

    def test_resolve_and_typo_suggestion(self):
        assert callable(resolve_metric("total_cost"))
        with pytest.raises(UnknownNameError) as excinfo:
            resolve_metric("total_cots")
        assert "total_cost" in str(excinfo.value)

    def test_separator_insensitive(self):
        assert resolve_metric("total-cost") is resolve_metric("total_cost")
        assert "cost_ratio_vs" in METRICS


class TestMetricSpec:
    def test_round_trip(self):
        spec = MetricSpec("cost_ratio_vs", {"reference": "OPT"}, label="vs OPT")
        restored = MetricSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown MetricSpec keys"):
            MetricSpec.from_dict({"kind": "total_cost", "prams": {}})

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            MetricSpec("total_cost", label="  ")

    def test_resolve(self):
        assert MetricSpec("total_cost").resolve() is resolve_metric("total_cost")


class TestExperimentSpecMetrics:
    def test_default_metric_is_total_cost(self):
        spec = line_experiment()
        assert [m.kind for m in spec.metrics] == ["total_cost"]

    def test_metrics_round_trip_through_json(self):
        spec = line_experiment(
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec("cost_ratio_vs", {"reference": "OPT"}, label="ratio"),
            )
        )
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_dict_without_metrics_gets_default(self):
        data = line_experiment().to_dict()
        del data["metrics"]
        assert [m.kind for m in ExperimentSpec.from_dict(data).metrics] == [
            "total_cost"
        ]

    def test_explicitly_empty_metrics_list_rejected(self):
        # Only a *missing* key falls back to the default; "metrics": [] in
        # a hand-written dict is malformed, same as ExperimentSpec(metrics=()).
        data = line_experiment().to_dict()
        data["metrics"] = []
        with pytest.raises(ValueError, match="at least one metric"):
            ExperimentSpec.from_dict(data)

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValueError, match="duplicate metrics"):
            line_experiment(
                metrics=(MetricSpec("total_cost"), MetricSpec("total_cost"))
            )

    def test_no_metrics_rejected(self):
        with pytest.raises(ValueError, match="at least one metric"):
            line_experiment(metrics=())


class TestPolicyOverrides:
    def test_round_trip(self):
        spec = line_experiment(
            policies=(
                PolicySpec("offstat", label="β<c"),
                PolicySpec(
                    "offstat",
                    label="β>c",
                    costs=CostSpec.migration_expensive(),
                    scenario=ScenarioSpec("timezones", {"period": 4}),
                ),
            )
        )
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.policies[1].costs == CostSpec.migration_expensive()

    def test_scenario_substitution_reaches_overrides(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="base"),
                PolicySpec(
                    "onth",
                    label="tz",
                    scenario=ScenarioSpec("timezones", {"period": 4}),
                ),
            )
        )
        moved = spec.with_param("scenario.sojourn", 17)
        assert moved.scenario.params["sojourn"] == 17
        assert moved.policies[1].scenario.params["sojourn"] == 17

    def test_costs_substitution_reaches_overrides(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="a"),
                PolicySpec(
                    "onth", label="b", costs=CostSpec.migration_expensive()
                ),
            )
        )
        moved = spec.with_param("costs.run_active", 9.0)
        assert moved.costs.run_active == 9.0
        assert moved.policies[1].costs.run_active == 9.0
        # the override's defining fields survive the substitution
        assert moved.policies[1].costs.migration == 400.0

    def test_shared_scenario_shares_one_trace(self):
        # Two identical effective scenarios must produce identical demand:
        # the policies see one trace, so equal policies yield equal totals.
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="first"),
                PolicySpec("onth", label="second"),
            )
        )
        out = run_replicate(spec, np.random.default_rng(5))
        assert out["first"] == out["second"]


class TestBuiltinMetrics:
    def test_total_cost_matches_ledgers(self):
        spec = line_experiment()
        outcome = run_experiment(spec)
        assert outcome.series == pytest.approx(outcome.total_costs)

    def test_per_round_average(self):
        spec = line_experiment(metrics=(MetricSpec("per_round_average"),))
        outcome = run_experiment(spec)
        ledger = outcome.results["ONTH"]
        assert outcome.series["ONTH/round"] == pytest.approx(
            ledger.total_cost / ledger.rounds
        )

    def test_cost_ratio_vs_opt_at_least_one(self):
        spec = line_experiment(
            metrics=(MetricSpec("cost_ratio_vs", {"reference": "OPT"}),)
        )
        out = run_replicate(spec, np.random.default_rng(1))
        assert out["ONTH"] >= 1.0 - 1e-9

    def test_cost_ratio_vs_policy_label(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("offstat", label="OFFSTAT"),
            ),
            metrics=(MetricSpec("cost_ratio_vs", {"reference": "OFFSTAT"}),),
        )
        out = run_replicate(spec, np.random.default_rng(2))
        # the reference's trivial self-ratio is omitted
        assert set(out) == {"ONTH"}
        assert out["ONTH"] > 0

    def test_reference_cost_series(self):
        spec = line_experiment(
            policies=(PolicySpec("offstat", label="OFFSTAT"),),
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec("reference_cost", {"reference": "OPT"}),
            ),
        )
        out = run_replicate(spec, np.random.default_rng(3))
        assert set(out) == {"OFFSTAT", "OPT"}
        assert out["OFFSTAT"] >= out["OPT"] - 1e-9

    def test_reference_cost_ambiguous_without_policy(self):
        spec = line_experiment(
            policies=(
                PolicySpec("offstat", label="a"),
                PolicySpec(
                    "offstat", label="b", costs=CostSpec.migration_expensive()
                ),
            ),
            metrics=(MetricSpec("reference_cost", {"reference": "OPT"}),),
        )
        with pytest.raises(ValueError, match="policy=<label>"):
            run_replicate(spec, np.random.default_rng(4))

    def test_cost_breakdown_single_policy_part_names(self):
        spec = line_experiment(
            metrics=(
                MetricSpec(
                    "cost_breakdown",
                    {"parts": ("access", "running", "migration+creation",
                               "total")},
                ),
            )
        )
        out = run_replicate(spec, np.random.default_rng(6))
        assert set(out) == {"access", "running", "migration+creation", "total"}
        assert out["total"] == pytest.approx(
            out["access"] + out["running"] + out["migration+creation"]
        )

    def test_cost_breakdown_multi_policy_prefixes_labels(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("offstat", label="OFFSTAT"),
            ),
            metrics=(MetricSpec("cost_breakdown", {"parts": ("total",)}),),
        )
        out = run_replicate(spec, np.random.default_rng(7))
        assert set(out) == {"ONTH total", "OFFSTAT total"}

    def test_cost_breakdown_unknown_part(self):
        spec = line_experiment(
            metrics=(MetricSpec("cost_breakdown", {"parts": ("latency!",)}),)
        )
        with pytest.raises(ValueError, match="unknown breakdown part"):
            run_replicate(spec, np.random.default_rng(8))

    def test_unknown_reference_lists_options(self):
        spec = line_experiment(
            metrics=(MetricSpec("cost_ratio_vs", {"reference": "NOPE"}),)
        )
        with pytest.raises(ValueError, match="unknown reference"):
            run_replicate(spec, np.random.default_rng(9))


class TestSeriesNameCollisions:
    def test_two_metrics_colliding_raise(self):
        # total_cost and cost_ratio_vs both emit bare policy labels.
        spec = line_experiment(
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec("cost_ratio_vs", {"reference": "OPT"}),
            )
        )
        with pytest.raises(ValueError, match="already produced"):
            run_replicate(spec, np.random.default_rng(1))

    def test_metric_label_resolves_the_collision(self):
        spec = line_experiment(
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec(
                    "cost_ratio_vs", {"reference": "OPT"}, label="vs OPT"
                ),
            )
        )
        out = run_replicate(spec, np.random.default_rng(1))
        # single-series output: the label replaces the series name outright
        assert set(out) == {"ONTH", "vs OPT"}

    def test_metric_label_prefixes_multi_series_output(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="A"),
                PolicySpec("offstat", label="B"),
            ),
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec(
                    "cost_ratio_vs", {"reference": "OPT"}, label="ratio"
                ),
            ),
        )
        out = run_replicate(spec, np.random.default_rng(2))
        assert set(out) == {"A", "B", "ratio A", "ratio B"}


class TestResolveSeriesLabels:
    def test_happy_path_returns_labels_in_order(self):
        spec = line_experiment(
            policies=(PolicySpec("onth", label="X"), PolicySpec("offstat"))
        )
        labels = resolve_series_labels(spec)
        assert labels[0] == "X"
        assert len(labels) == 2

    def test_same_kind_same_params_collides(self):
        # Two identical unlabelled policies build the same .name.
        spec = line_experiment(
            policies=(PolicySpec("onth"), PolicySpec("onth"))
        )
        with pytest.raises(ValueError, match="collide on series label"):
            resolve_series_labels(spec)

    def test_label_matching_other_policys_built_name_collides(self):
        built_name = PolicySpec("onth").build().name
        spec = line_experiment(
            policies=(
                PolicySpec("offstat", label=built_name),
                PolicySpec("onth"),
            )
        )
        with pytest.raises(ValueError, match="collide on series label"):
            resolve_series_labels(spec)

    def test_explicit_duplicate_labels_rejected_at_spec_build(self):
        with pytest.raises(ValueError, match="labels must be unique"):
            line_experiment(
                policies=(
                    PolicySpec("onth", label="same"),
                    PolicySpec("offstat", label="same"),
                )
            )


class TestMultiScenarioReplicates:
    def test_distinct_scenarios_distinct_traces(self):
        spec = line_experiment(
            policies=(
                PolicySpec("onth", label="commuter"),
                PolicySpec(
                    "onth",
                    label="tz",
                    scenario=ScenarioSpec(
                        "timezones", {"period": 4, "requests_per_round": 3}
                    ),
                ),
            )
        )
        out = run_replicate(spec, np.random.default_rng(11))
        assert set(out) == {"commuter", "tz"}
        assert out["commuter"] != out["tz"]

    def test_sweep_moves_all_scenarios(self):
        spec = SweepSpec(
            experiment=line_experiment(
                policies=(
                    PolicySpec("onth", label="commuter"),
                    PolicySpec(
                        "onth",
                        label="tz",
                        scenario=ScenarioSpec("timezones", {"period": 4}),
                    ),
                )
            ),
            parameter="scenario.sojourn",
            values=(2, 6),
            runs=2,
            seed=3,
            figure="t",
        )
        result = run_sweep(spec)
        assert set(result.series) == {"commuter", "tz"}
        assert result.x_values == (2, 6)


class TestCoupledSweeps:
    def base(self):
        return ExperimentSpec(
            topology=TopologySpec("erdos_renyi"),
            scenario=ScenarioSpec("timezones", {"sojourn": 5}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        )

    def test_values_substituted_per_path(self):
        spec = SweepSpec(
            experiment=self.base(),
            parameter=("topology.n", "scenario.requests_per_round"),
            values=((30, 3), (60, 6)),
            runs=1,
            seed=1,
            figure="t",
        )
        probe = spec.experiment_at((60, 6))
        assert probe.topology.params["n"] == 60
        assert probe.scenario.params["requests_per_round"] == 6

    def test_figure_x_values_are_primary_components(self):
        spec = SweepSpec(
            experiment=self.base(),
            parameter=("topology.n", "scenario.requests_per_round"),
            values=((30, 3), (60, 6)),
            runs=1,
            seed=1,
            figure="t",
        )
        result = run_sweep(spec)
        assert result.x_values == (30, 60)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="swept paths"):
            SweepSpec(
                experiment=self.base(),
                parameter=("topology.n", "scenario.requests_per_round"),
                values=((30, 3), (60,)),
                runs=1,
                figure="t",
            )

    def test_round_trip_through_json(self):
        spec = SweepSpec(
            experiment=self.base(),
            parameter=("topology.n", "scenario.requests_per_round"),
            values=((30, 3), (60, 6)),
            runs=2,
            seed=4,
            figure="t",
        )
        restored = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.parameter == ("topology.n", "scenario.requests_per_round")

    def test_seed_path_rejected_in_tuple_too(self):
        with pytest.raises(ValueError, match="cannot be swept"):
            SweepSpec(
                experiment=self.base(),
                parameter=("topology.n", "seed"),
                values=((30, 1),),
                figure="t",
            )


class TestEvaluateMetricsDirectly:
    def test_custom_metric_via_context(self):
        spec = line_experiment()
        rng = np.random.default_rng(1)
        from repro.api.experiment import _simulate_spec

        context = _simulate_spec(spec, rng)
        assert isinstance(context, MetricContext)
        assert context.labels == ("ONTH",)
        out = evaluate_metrics(context, (MetricSpec("total_cost"),))
        assert out["ONTH"] == context.runs[0].run.total_cost

    def test_opt_reference_is_cached_per_regime(self):
        spec = line_experiment(
            policies=(
                PolicySpec("offstat", label="a"),
                PolicySpec("offstat", label="b"),
            )
        )
        from repro.api.experiment import _simulate_spec

        context = _simulate_spec(spec, np.random.default_rng(2))
        first = context.reference_cost("OPT", context.runs[0])
        assert context.reference_cost("OPT", context.runs[1]) == first
        assert len(context._reference_cache) == 1
