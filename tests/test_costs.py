"""Tests for the cost model (repro.core.costs)."""

import numpy as np
import pytest

from repro.core.config import Configuration
from repro.core.costs import CostModel, bandwidth_migration_matrix
from repro.core.load import LinearLoad, QuadraticLoad
from repro.topology.generators import line, star
from repro.topology.substrate import Link, Substrate


class TestConstruction:
    def test_paper_defaults(self):
        cm = CostModel.paper_default()
        assert cm.migration == 40.0
        assert cm.creation == 400.0
        assert cm.run_active == 2.5
        assert cm.run_inactive == 0.5
        assert cm.migration_beneficial

    def test_migration_expensive(self):
        cm = CostModel.migration_expensive()
        assert cm.migration == 400.0
        assert cm.creation == 40.0
        assert not cm.migration_beneficial

    def test_default_load_is_linear(self):
        assert isinstance(CostModel().load, LinearLoad)

    def test_with_load(self):
        cm = CostModel.paper_default().with_load(QuadraticLoad())
        assert isinstance(cm.load, QuadraticLoad)
        assert cm.migration == 40.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError, match="migration"):
            CostModel(migration=-1)

    def test_rejects_inactive_dearer_than_active(self):
        with pytest.raises(ValueError, match="run_inactive"):
            CostModel(run_active=1.0, run_inactive=2.0)

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError, match="square"):
            CostModel(migration_matrix=np.zeros((2, 3)))

    def test_rejects_negative_matrix(self):
        with pytest.raises(ValueError, match=">= 0"):
            CostModel(migration_matrix=np.full((2, 2), -1.0))

    def test_matrix_copy_is_frozen(self):
        source = np.ones((2, 2))
        cm = CostModel(migration_matrix=source)
        source[0, 0] = 99.0
        assert cm.migration_matrix[0, 0] == 1.0
        with pytest.raises(ValueError):
            cm.migration_matrix[0, 0] = 5.0


class TestRunningCost:
    def test_counts(self):
        cm = CostModel.paper_default()
        assert cm.running_cost_counts(3, 2) == pytest.approx(3 * 2.5 + 2 * 0.5)

    def test_configuration(self):
        cm = CostModel.paper_default()
        cfg = Configuration((1, 2), (3,))
        assert cm.running_cost(cfg) == pytest.approx(2 * 2.5 + 0.5)

    def test_empty_configuration_is_free(self):
        assert CostModel().running_cost(Configuration.empty()) == 0.0


class TestMigrationCost:
    def test_constant_beta(self):
        cm = CostModel.paper_default()
        assert cm.migration_cost(0, 5) == 40.0

    def test_same_node_is_free(self):
        assert CostModel.paper_default().migration_cost(3, 3) == 0.0

    def test_matrix_lookup(self):
        matrix = np.array([[0.0, 7.0], [9.0, 0.0]])
        cm = CostModel(migration_matrix=matrix)
        assert cm.migration_cost(0, 1) == 7.0
        assert cm.migration_cost(1, 0) == 9.0


class TestBandwidthMigrationMatrix:
    def test_diagonal_zero_and_symmetric_shape(self):
        sub = line(4, seed=0)
        matrix = bandwidth_migration_matrix(sub)
        assert matrix.shape == (4, 4)
        np.testing.assert_array_equal(np.diag(matrix), np.zeros(4))

    def test_farther_pairs_cost_at_least_as_much_on_uniform_path(self):
        # Uniform bandwidths: the bottleneck is the same, so cost is flat
        # across pairs (overhead + transfer over equal bottleneck).
        links = [Link(i, i + 1, 1.0, 2.0) for i in range(3)]
        sub = Substrate(4, links)
        matrix = bandwidth_migration_matrix(sub, state_size_mbit=10.0, overhead=1.0)
        off = matrix[~np.eye(4, dtype=bool)]
        assert np.allclose(off, off[0])

    def test_bottleneck_drives_cost(self):
        """A slow link on the path makes migration across it dearer."""
        links = [Link(0, 1, 1.0, 10.0), Link(1, 2, 1.0, 1.0)]
        sub = Substrate(3, links)
        matrix = bandwidth_migration_matrix(sub, state_size_mbit=10.0, overhead=0.0)
        assert matrix[0, 2] > matrix[0, 1]
        assert matrix[1, 2] == pytest.approx(matrix[0, 2])  # same bottleneck

    def test_read_only(self):
        matrix = bandwidth_migration_matrix(line(3, seed=0))
        with pytest.raises(ValueError):
            matrix[0, 1] = 3.0

    def test_usable_in_cost_model(self):
        sub = star(4, seed=0)
        matrix = bandwidth_migration_matrix(sub)
        cm = CostModel(migration_matrix=matrix)
        assert cm.migration_cost(1, 2) == pytest.approx(matrix[1, 2])

    def test_parameter_validation(self):
        sub = line(3, seed=0)
        with pytest.raises(ValueError, match="state_size_mbit"):
            bandwidth_migration_matrix(sub, state_size_mbit=0)
        with pytest.raises(ValueError, match="overhead"):
            bandwidth_migration_matrix(sub, overhead=-1)
