"""Tests for the seeded RNG plumbing (repro.util.rng)."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(8)
        b = ensure_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passed_through_unchanged(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_float_seed(self):
        with pytest.raises(TypeError, match="seed"):
            ensure_rng(1.5)

    def test_rejects_string_seed(self):
        with pytest.raises(TypeError, match="seed"):
            ensure_rng("abc")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(5, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_same_seed_same_streams(self):
        first = [g.random(4) for g in spawn_rngs(9, 3)]
        second = [g.random(4) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_prefix_stability(self):
        """Child i does not depend on how many children are spawned."""
        few = spawn_rngs(3, 2)
        many = spawn_rngs(3, 5)
        np.testing.assert_array_equal(few[0].random(4), many[0].random(4))
        np.testing.assert_array_equal(few[1].random(4), many[1].random(4))

    def test_none_seed_allowed(self):
        assert len(spawn_rngs(None, 2)) == 2
