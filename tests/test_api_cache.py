"""Tests for the spec-keyed result cache (repro.api.cache)."""

import json

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import ExecutionBackend
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=2,
        seed=1,
        figure="t",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class ExplodingBackend(ExecutionBackend):
    """Proof that a cache hit never re-simulates."""

    def run_replicates(self, replicate, tasks, on_result=None):
        raise AssertionError("cache hit should not execute any replicates")


class TestKeys:
    def test_key_is_stable_across_instances(self, tmp_path):
        spec = small_sweep()
        assert ResultCache(tmp_path).key_for(spec) == ResultCache(
            tmp_path / "other"
        ).key_for(spec)

    def test_key_depends_on_every_spec_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for(small_sweep())
        assert cache.key_for(small_sweep(runs=3)) != base
        assert cache.key_for(small_sweep(seed=2)) != base
        assert cache.key_for(small_sweep(values=(2, 6))) != base
        richer = small_sweep(
            experiment=ExperimentSpec(
                topology=TopologySpec("erdos_renyi", {"n": 30}),
                scenario=ScenarioSpec("commuter", {"period": 4}),
                policies=(PolicySpec("onth", label="ONTH"),),
                horizon=30,
                metrics=(MetricSpec("per_round_average"),),
            )
        )
        assert cache.key_for(richer) != base

    def test_key_survives_spec_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        restored = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert cache.key_for(restored) == cache.key_for(spec)


class TestLoadStore:
    def test_miss_then_hit_round_trips_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        assert cache.load(spec) is None
        result = run_sweep(spec, cache=cache)
        assert cache.stores == 1
        again = cache.load(spec)
        assert again == result

    def test_cached_run_sweep_skips_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        result = run_sweep(spec, cache=cache)
        cached = run_sweep(spec, backend=ExplodingBackend(), cache=cache)
        assert cached == result
        assert cache.hits == 1

    def test_no_cache_means_no_files(self, tmp_path):
        run_sweep(small_sweep())
        assert not list(tmp_path.iterdir())

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        path = cache.path_for(spec)
        path.write_text("{not json")
        assert cache.load(spec) is None

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        # A colliding or hand-edited entry must never be served.
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        path = cache.path_for(spec)
        data = json.loads(path.read_text())
        data["sweep"]["runs"] = 99
        path.write_text(json.dumps(data))
        assert cache.load(spec) is None

    def test_code_edit_invalidates(self, tmp_path, monkeypatch):
        # An editable install never bumps __version__; the source
        # fingerprint must invalidate the key on code changes instead.
        import repro.api.cache as cache_module

        cache = ResultCache(tmp_path)
        spec = small_sweep()
        base = cache.key_for(spec)
        edited = cache_module._code_fingerprint() + "-edited"
        monkeypatch.setattr(cache_module, "_FINGERPRINT", edited)
        assert cache.key_for(spec) != base

    def test_version_change_invalidates(self, tmp_path, monkeypatch):
        import repro

        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache.load(spec) is None  # different key -> different path

    def test_coupled_sweep_caches_display_x_values(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep(
            parameter=("topology.n", "scenario.sojourn"),
            values=((30, 2), (40, 5)),
        )
        result = run_sweep(spec, cache=cache)
        assert result.x_values == (30, 40)
        assert run_sweep(spec, backend=ExplodingBackend(), cache=cache) == result


class TestFigureCacheThreading:
    def test_figure_function_accepts_cache(self, tmp_path):
        from repro.experiments import figures

        cache = ResultCache(tmp_path)
        params = dict(sizes=(20, 30), horizon=30, sojourn=5, runs=1, seed=1)
        first = figures.figure03(cache=cache, **params)
        assert cache.stores == 1
        second = figures.figure03(cache=cache, **params)
        assert cache.hits == 1
        assert second == first


class TestCLICacheFlags:
    def run_cli(self, extra):
        from repro.experiments.__main__ import main

        return main([
            "run", "--policy", "onth", "--topology", "erdos_renyi:n=30",
            "--horizon", "30", "--runs", "1", "--json", *extra,
        ])

    def test_second_invocation_hits_and_matches(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr()
        assert "cache miss" in first.err
        assert self.run_cli(["--cache-dir", str(tmp_path)]) == 0
        second = capsys.readouterr()
        assert "cache hit" in second.err
        a, b = json.loads(first.out), json.loads(second.out)
        a.pop("elapsed_seconds"), b.pop("elapsed_seconds")
        assert a == b

    def test_no_cache_bypasses(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path), "--no-cache"]) == 0
        assert "cache" not in capsys.readouterr().err
        assert not list(tmp_path.iterdir())

    def test_figure_mode_cache_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        argv = ["fig03", "--runs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert any(tmp_path.iterdir())  # the sweep was stored
        assert main(argv) == 0  # second run loads from the cache
