"""Tests for the spec-keyed result cache (repro.api.cache)."""

import json

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import ExecutionBackend
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=2,
        seed=1,
        figure="t",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class ExplodingBackend(ExecutionBackend):
    """Proof that a cache hit never re-simulates."""

    def run_replicates(self, replicate, tasks, on_result=None):
        raise AssertionError("cache hit should not execute any replicates")


class TestKeys:
    def test_key_is_stable_across_instances(self, tmp_path):
        spec = small_sweep()
        assert ResultCache(tmp_path).key_for(spec) == ResultCache(
            tmp_path / "other"
        ).key_for(spec)

    def test_key_depends_on_every_spec_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for(small_sweep())
        assert cache.key_for(small_sweep(runs=3)) != base
        assert cache.key_for(small_sweep(seed=2)) != base
        assert cache.key_for(small_sweep(values=(2, 6))) != base
        richer = small_sweep(
            experiment=ExperimentSpec(
                topology=TopologySpec("erdos_renyi", {"n": 30}),
                scenario=ScenarioSpec("commuter", {"period": 4}),
                policies=(PolicySpec("onth", label="ONTH"),),
                horizon=30,
                metrics=(MetricSpec("per_round_average"),),
            )
        )
        assert cache.key_for(richer) != base

    def test_key_survives_spec_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        restored = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert cache.key_for(restored) == cache.key_for(spec)


class TestLoadStore:
    def test_miss_then_hit_round_trips_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        assert cache.load(spec) is None
        result = run_sweep(spec, cache=cache)
        assert cache.stores == 1
        again = cache.load(spec)
        assert again == result

    def test_cached_run_sweep_skips_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        result = run_sweep(spec, cache=cache)
        cached = run_sweep(spec, backend=ExplodingBackend(), cache=cache)
        assert cached == result
        assert cache.hits == 1

    def test_no_cache_means_no_files(self, tmp_path):
        run_sweep(small_sweep())
        assert not list(tmp_path.iterdir())

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        path = cache.path_for(spec)
        path.write_text("{not json")
        assert cache.load(spec) is None

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        # A colliding or hand-edited entry must never be served.
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        path = cache.path_for(spec)
        data = json.loads(path.read_text())
        data["sweep"]["runs"] = 99
        path.write_text(json.dumps(data))
        assert cache.load(spec) is None

    def test_code_edit_invalidates(self, tmp_path, monkeypatch):
        # An editable install never bumps __version__; the source
        # fingerprint must invalidate the key on code changes instead.
        import repro.api.cache as cache_module

        cache = ResultCache(tmp_path)
        spec = small_sweep()
        base = cache.key_for(spec)
        edited = cache_module._code_fingerprint() + "-edited"
        monkeypatch.setattr(cache_module, "_FINGERPRINT", edited)
        assert cache.key_for(spec) != base

    def test_version_change_invalidates(self, tmp_path, monkeypatch):
        import repro

        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache.load(spec) is None  # different key -> different path

    def test_coupled_sweep_caches_display_x_values(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep(
            parameter=("topology.n", "scenario.sojourn"),
            values=((30, 2), (40, 5)),
        )
        result = run_sweep(spec, cache=cache)
        assert result.x_values == (30, 40)
        assert run_sweep(spec, backend=ExplodingBackend(), cache=cache) == result


class TestPointEntries:
    def test_point_key_depends_on_every_coordinate(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        point = spec.experiment_at(2)
        base = cache.key_for_point(point, 1, 0, 2)
        assert cache.key_for_point(point, 2, 0, 2) != base       # sweep seed
        assert cache.key_for_point(point, 1, 2, 2) != base       # spawn offset
        assert cache.key_for_point(point, 1, 0, 3) != base       # replicates
        other = spec.experiment_at(5)
        assert cache.key_for_point(other, 1, 0, 2) != base       # experiment
        # stable across instances and spec round-trips
        import json as json_module

        from repro.api.specs import ExperimentSpec

        restored = ExperimentSpec.from_dict(
            json_module.loads(json_module.dumps(point.to_dict()))
        )
        assert ResultCache(tmp_path / "b").key_for_point(restored, 1, 0, 2) == base

    def test_point_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = small_sweep().experiment_at(2)
        samples = [{"ONTH": 1.25}, {"ONTH": 2.5}]
        cache.store_point(point, 1, 0, 2, samples)
        assert cache.point_stores == 1
        assert cache.load_point(point, 1, 0, 2) == samples
        assert cache.point_hits == 1

    def test_point_sample_count_must_match(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = small_sweep().experiment_at(2)
        with pytest.raises(ValueError):
            cache.store_point(point, 1, 0, 3, [{"ONTH": 1.0}])
        cache.store_point(point, 1, 0, 1, [{"ONTH": 1.0}])
        # asking for a different replicate count is a different key: a miss
        assert cache.load_point(point, 1, 0, 2) is None
        assert cache.point_misses == 1

    def test_tampered_point_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        point = spec.experiment_at(2)
        path = cache.store_point(point, 1, 0, 2, [{"ONTH": 1.0}, {"ONTH": 2.0}])
        data = json.loads(path.read_text())
        data["experiment"]["horizon"] = 999
        path.write_text(json.dumps(data))
        assert cache.load_point(point, 1, 0, 2) is None
        path.write_text("{torn")
        assert cache.load_point(point, 1, 0, 2) is None

    def test_non_object_json_entry_is_a_miss_everywhere(self, tmp_path):
        # Valid JSON whose top level is not an object (a foreign or
        # hand-edited file in the shared dir) must read as a miss / a
        # corrupt stats entry, never raise.
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        point = spec.experiment_at(2)
        point_path = cache.store_point(point, 1, 0, 1, [{"ONTH": 1.0}])
        run_sweep(spec, cache=cache)
        sweep_path = cache.path_for(spec)
        for path in (point_path, sweep_path):
            path.write_text("[1, 2]")
        assert cache.load_point(point, 1, 0, 1) is None
        assert cache.load(spec) is None
        assert cache.stats()["kinds"]["corrupt"] == 2

    def test_sweep_entry_is_not_a_point_entry(self, tmp_path):
        # A sweep entry copied over a point key must be rejected by the
        # kind check, not parsed as samples.
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        point = spec.experiment_at(2)
        sweep_path = cache.path_for(spec)
        point_path = cache.path_for_key(cache.key_for_point(point, 1, 0, 2))
        point_path.parent.mkdir(parents=True, exist_ok=True)
        point_path.write_text(sweep_path.read_text())
        assert cache.load_point(point, 1, 0, 2) is None


class TestMaintenance:
    def fill(self, cache, count):
        point = small_sweep().experiment_at(2)
        for i in range(count):
            cache.store_point(point, 1, i, 1, [{"ONTH": float(i)}])

    def test_stats_counts_entries_by_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats() == {
            "root": str(tmp_path), "entries": 0, "bytes": 0, "kinds": {},
        }
        run_sweep(small_sweep(), cache=cache)
        stats = cache.stats()
        assert stats["entries"] == 3  # two points + one sweep
        assert stats["kinds"] == {"point": 2, "sweep": 1}
        assert stats["bytes"] > 0

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, 4)
        assert cache.clear() == 4
        assert cache.stats()["entries"] == 0
        assert cache.clear() == 0

    def test_prune_by_entry_count_drops_oldest(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        self.fill(cache, 5)
        # age the entries deterministically: entry i is i hours old
        paths = list(cache.entries())
        assert len(paths) == 5
        point = small_sweep().experiment_at(2)
        by_spawn = {
            json.loads(p.read_text())["spawn_start"]: p for p in paths
        }
        base = 1_700_000_000
        for spawn, path in by_spawn.items():
            os.utime(path, (base - spawn * 3600, base - spawn * 3600))
        assert cache.prune(max_entries=2) == 3
        # the two newest (smallest spawn offsets) survive
        assert cache.load_point(point, 1, 0, 1) is not None
        assert cache.load_point(point, 1, 1, 1) is not None
        assert cache.load_point(point, 1, 2, 1) is None

    def test_prune_by_age(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        self.fill(cache, 3)
        point = small_sweep().experiment_at(2)
        old = cache.path_for_key(cache.key_for_point(point, 1, 2, 1))
        stale = time.time() - 7200
        os.utime(old, (stale, stale))
        assert cache.prune(max_age=3600) == 1
        assert cache.load_point(point, 1, 2, 1) is None
        assert cache.stats()["entries"] == 2

    def test_prune_argument_validation(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune()
        with pytest.raises(ValueError):
            cache.prune(max_entries=-1)
        with pytest.raises(ValueError):
            cache.prune(max_age=-2.0)

    def tear(self, cache):
        """Truncate one entry mid-JSON, as a crashed non-atomic copy would."""
        path = next(iter(cache.entries()))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        return path

    def test_stats_count_torn_entries_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, 3)
        self.tear(cache)
        stats = cache.stats()  # must not raise on the partial entry
        assert stats["entries"] == 3
        assert stats["kinds"] == {"corrupt": 1, "point": 2}

    def test_prune_drops_torn_entries_without_raising(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        self.fill(cache, 3)
        torn = self.tear(cache)
        stale = 1_700_000_000
        os.utime(torn, (stale, stale))  # oldest entry -> first to go
        assert cache.prune(max_entries=2) == 1
        assert not torn.exists()
        assert cache.stats()["kinds"] == {"point": 2}

    def test_stats_skip_tmp_and_foreign_files(self, tmp_path):
        # in-flight atomic writes (*.tmp) and stray files/dirs in a shared
        # directory are not entries and must not be counted or touched
        cache = ResultCache(tmp_path)
        self.fill(cache, 2)
        bucket = next(iter(cache.entries())).parent
        (bucket / "entry.json.tmp").write_text("{par")
        (tmp_path / "README").write_text("not a bucket")
        (tmp_path / "not-a-bucket").mkdir()
        (tmp_path / "not-a-bucket" / "stray.json").write_text("{}")
        assert cache.stats()["entries"] == 2
        assert cache.clear() == 2
        assert (bucket / "entry.json.tmp").exists()

    def test_stats_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats()["entries"] == 0
        assert cache.prune(max_entries=0) == 0

    def test_entries_survive_root_vanishing_mid_iteration(self, tmp_path):
        # a concurrent `cache clear` can delete buckets between listing
        # and descent; iteration must end cleanly, not raise
        import shutil

        cache = ResultCache(tmp_path)
        self.fill(cache, 6)
        iterator = cache.entries()
        first = next(iterator)
        assert first.exists()
        shutil.rmtree(tmp_path)
        assert list(iterator) == []  # remaining buckets skipped, no error
        assert cache.stats()["entries"] == 0


class TestFigureCacheThreading:
    def test_figure_function_accepts_cache(self, tmp_path):
        from repro.experiments import figures

        cache = ResultCache(tmp_path)
        params = dict(sizes=(20, 30), horizon=30, sojourn=5, runs=1, seed=1)
        first = figures.figure03(cache=cache, **params)
        assert cache.stores == 1
        second = figures.figure03(cache=cache, **params)
        assert cache.hits == 1
        assert second == first


class TestCLICacheFlags:
    def run_cli(self, extra):
        from repro.experiments.__main__ import main

        return main([
            "run", "--policy", "onth", "--topology", "erdos_renyi:n=30",
            "--horizon", "30", "--runs", "1", "--json", *extra,
        ])

    def test_second_invocation_hits_and_matches(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr()
        assert "cache miss" in first.err
        assert self.run_cli(["--cache-dir", str(tmp_path)]) == 0
        second = capsys.readouterr()
        assert "cache hit" in second.err
        a, b = json.loads(first.out), json.loads(second.out)
        a.pop("elapsed_seconds"), b.pop("elapsed_seconds")
        assert a == b

    def test_no_cache_bypasses(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path), "--no-cache"]) == 0
        assert "cache" not in capsys.readouterr().err
        assert not list(tmp_path.iterdir())

    def test_figure_mode_cache_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        argv = ["fig03", "--runs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert any(tmp_path.iterdir())  # the sweep was stored
        assert main(argv) == 0  # second run loads from the cache

    def test_first_run_reports_point_stats(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "points: 0/1 cached, 1 computed" in err

    def test_no_resume_skips_point_entries(self, tmp_path, capsys):
        assert self.run_cli(["--cache-dir", str(tmp_path), "--no-resume"]) == 0
        err = capsys.readouterr().err
        assert "points:" not in err
        from repro.api.cache import ResultCache

        assert ResultCache(tmp_path).stats()["kinds"] == {"sweep": 1}


class TestCLISharding:
    ARGS = [
        "run", "--policy", "onth", "--topology", "erdos_renyi:n=30",
        "--horizon", "30", "--runs", "1", "--json",
        "--sweep", "scenario.sojourn=2,5",
    ]

    def run_cli(self, extra):
        from repro.experiments.__main__ import main

        return main([*self.ARGS, *extra])

    def test_shard_without_cache_dir_errors(self, capsys):
        assert self.run_cli(["--shard", "1/2"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_shard_with_no_cache_flag_errors(self, tmp_path, capsys):
        assert self.run_cli(
            ["--cache-dir", str(tmp_path), "--no-cache", "--shard", "1/2"]
        ) == 2
        assert "--cache-dir" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0/2", "3/2", "2", "a/b", "1/0"])
    def test_malformed_shard_arguments_error(self, bad, capsys):
        with pytest.raises(SystemExit):
            self.run_cli(["--shard", bad])
        capsys.readouterr()

    def test_two_shards_then_assembly_matches_serial(self, tmp_path, capsys):
        assert self.run_cli([]) == 0
        serial = json.loads(capsys.readouterr().out)
        cache = ["--cache-dir", str(tmp_path)]
        assert self.run_cli([*cache, "--shard", "1/2"]) == 0
        first = capsys.readouterr()
        assert "1 left to other shards" in first.err
        assert json.loads(first.out)["notes"].startswith("partial")
        assert self.run_cli([*cache, "--shard", "2/2"]) == 0
        capsys.readouterr()
        assert self.run_cli(cache) == 0
        final = capsys.readouterr()
        assert "cache hit" in final.err
        assembled = json.loads(final.out)
        for payload in (serial, assembled):
            payload.pop("elapsed_seconds")
        assert assembled == serial

    def test_figure_mode_shard_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        base = ["fig03", "--runs", "1", "--cache-dir", str(tmp_path)]
        assert main([*base, "--shard", "1/2"]) == 0
        err = capsys.readouterr().err
        assert "left to other shards" in err
        assert main([*base, "--shard", "2/2"]) == 0
        capsys.readouterr()
        assert main(["fig03", "--runs", "1", "--shard", "1/2"]) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestCacheSubcommand:
    def seed_cache(self, tmp_path):
        from repro.experiments.__main__ import main

        assert main([
            "run", "--policy", "onth", "--topology", "erdos_renyi:n=30",
            "--horizon", "30", "--runs", "1", "--json",
            "--sweep", "scenario.sojourn=2,5",
            "--cache-dir", str(tmp_path),
        ]) == 0

    def test_stats_clear_round_trip(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        self.seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3
        assert stats["kinds"] == {"point": 2, "sweep": 1}
        assert main(["cache", "clear", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 3

    def test_prune_respects_max_entries(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        self.seed_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "1", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 2

    def test_prune_without_bounds_errors(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-entries" in capsys.readouterr().err
