"""Tests for queue-backed sweep execution (repro.queue.worker, QueueBackend).

The property under test throughout: a sweep drained through the queue —
whatever the worker count, lease churn, or adaptive topping-up — assembles
a figure bit-identical to the plain serial ``run_sweep``.
"""

import pickle
import threading

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import QueueBackend, SerialBackend
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ComparisonSpec,
    ExperimentSpec,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.queue.broker import Broker
from repro.queue.worker import enqueue_sweep, execute_lease, try_finalize, worker_loop


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=2,
        seed=1,
        figure="t",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def adaptive_sweep(**overrides) -> SweepSpec:
    """A confidence-driven paired sweep: exercises topup tasks end to end."""
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("onbr", label="ONBR"),
            ),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=2,
        seed=1,
        figure="t",
        replication=ReplicationSpec(
            ci_level=0.9, target_halfwidth=0.02, relative=True, max_runs=6
        ),
        comparison=ComparisonSpec(baseline="ONTH"),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _scaled_draw(x, rng):
    """A picklable replicate: deterministic in (x, seed) like the real ones."""
    return {"value": float(x) * 10.0, "draw": float(rng.random())}


def _make_tasks(count):
    import numpy as np

    from repro.api.execution import ReplicateTask

    return [
        ReplicateTask(x=float(i), seed=np.random.SeedSequence(i))
        for i in range(count)
    ]


def drain(broker, cache, **kwargs):
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("idle_exit", 0.2)
    return worker_loop(broker, cache, **kwargs)


@pytest.fixture()
def broker(tmp_path):
    return Broker(tmp_path / "queue.db")


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestEnqueue:
    def test_cold_enqueue_creates_one_task_per_point(self, broker, cache):
        state = enqueue_sweep(broker, cache, small_sweep())
        assert state["status"] == "pending"
        assert state["tasks"] == {"pending": 2}

    def test_job_id_is_the_cache_key(self, broker, cache):
        spec = small_sweep()
        state = enqueue_sweep(broker, cache, spec)
        assert state["job"] == cache.key_for(spec)

    def test_warm_enqueue_touches_nothing(self, broker, cache):
        spec = small_sweep()
        run_sweep(spec, cache=cache)
        state = enqueue_sweep(broker, cache, spec)
        assert state["status"] == "done"
        assert state["cached"] is True
        assert state["tasks"] == {}
        assert broker.stats()["jobs"] == {}  # broker never touched

    def test_requeue_recreates_a_failed_job(self, tmp_path, cache):
        broker = Broker(tmp_path / "queue.db", max_attempts=1)
        spec = small_sweep()
        job_id = enqueue_sweep(broker, cache, spec)["job"]
        # burn every task's attempt budget, then finalize: job is failed
        while (lease := broker.lease_task("w")) is not None:
            broker.fail(lease, "induced")
        assert try_finalize(broker, job_id, cache) is None
        assert broker.job_state(job_id)["status"] == "failed"
        # plain enqueue leaves the terminal job alone; requeue restarts it
        assert enqueue_sweep(broker, cache, spec)["status"] == "failed"
        fresh = enqueue_sweep(broker, cache, spec, requeue=True)
        assert fresh["status"] == "pending"
        assert fresh["tasks"] == {"pending": 2}


class TestDrainBitIdentity:
    def test_single_worker_matches_serial(self, broker, cache):
        spec = small_sweep()
        serial = run_sweep(spec)
        enqueue_sweep(broker, cache, spec)
        executed = drain(broker, cache)
        assert executed == 2
        assert broker.job_state(cache.key_for(spec))["status"] == "done"
        assert cache.load(spec).to_dict() == serial.to_dict()

    def test_two_threaded_workers_match_serial(self, tmp_path):
        spec = small_sweep(values=(2, 3, 4, 5))
        serial = run_sweep(spec)
        path = tmp_path / "queue.db"
        cache_dir = tmp_path / "cache"
        enqueue_sweep(Broker(path), ResultCache(cache_dir), spec)

        def work():
            worker_loop(
                Broker(path), ResultCache(cache_dir), poll=0.02, idle_exit=0.3
            )

        threads = [threading.Thread(target=work) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        cache = ResultCache(cache_dir)
        assert Broker(path).job_state(cache.key_for(spec))["status"] == "done"
        assert cache.load(spec).to_dict() == serial.to_dict()

    def test_adaptive_comparison_sweep_matches_serial(self, broker, cache):
        spec = adaptive_sweep()
        serial = run_sweep(spec)
        enqueue_sweep(broker, cache, spec)
        executed = drain(broker, cache)
        assert executed >= 4  # 2 point tasks + at least one topup each
        assert cache.load(spec).to_dict() == serial.to_dict()

    def test_drained_job_answers_warm_on_reenqueue(self, broker, cache):
        spec = small_sweep()
        enqueue_sweep(broker, cache, spec)
        drain(broker, cache)
        again = enqueue_sweep(broker, cache, spec)
        assert again["cached"] is True
        assert again["tasks"] == {}


class TestLeaseExecution:
    def test_point_lease_stores_cache_entry(self, broker, cache):
        spec = small_sweep()
        enqueue_sweep(broker, cache, spec)
        lease = broker.lease_task("w")
        execute_lease(broker, lease, cache)
        index = lease.payload["point"]
        experiment = spec.experiment_at(spec.values[index])
        assert cache.load_point(
            experiment, spec.seed, index * spec.runs, spec.runs
        ) is not None

    def test_finalize_assembles_after_last_task(self, broker, cache):
        spec = small_sweep()
        job_id = enqueue_sweep(broker, cache, spec)["job"]
        while (lease := broker.lease_task("w")) is not None:
            execute_lease(broker, lease, cache)
            broker.complete(lease)
        result = try_finalize(broker, job_id, cache)
        assert result is not None
        assert broker.job_state(job_id)["status"] == "done"
        assert cache.load(spec).to_dict() == result.to_dict()

    def test_failed_task_fails_the_job(self, broker, cache):
        spec = small_sweep()
        job_id = enqueue_sweep(broker, cache, spec)["job"]
        own = Broker(broker.path, max_attempts=1)
        while (lease := own.lease_task("w")) is not None:
            own.fail(lease, "simulated crash")
        assert try_finalize(own, job_id, cache) is None
        state = own.job_state(job_id)
        assert state["status"] == "failed"
        assert "simulated crash" in state["error"]


class TestQueueBackend:
    def test_backend_matches_serial(self, tmp_path):
        spec = small_sweep()
        serial = run_sweep(spec)
        backend = QueueBackend(tmp_path / "queue.db", poll=0.01)
        queued = run_sweep(spec, backend=backend)
        assert queued.to_dict() == serial.to_dict()

    def test_transient_job_is_deleted_afterwards(self, tmp_path):
        backend = QueueBackend(tmp_path / "queue.db", poll=0.01)
        run_sweep(small_sweep(), backend=backend)
        assert backend.broker.stats()["jobs"] == {}

    def test_chunking_preserves_order(self, tmp_path):
        spec = small_sweep(values=(2, 3, 4, 5), runs=3)
        serial = run_sweep(spec)
        backend = QueueBackend(tmp_path / "queue.db", chunk=2, poll=0.01)
        assert run_sweep(spec, backend=backend).to_dict() == serial.to_dict()

    def test_external_worker_drains_backend_job(self, tmp_path):
        spec = small_sweep()
        serial = run_sweep(spec)
        path = tmp_path / "queue.db"
        backend = QueueBackend(path, poll=0.01, local=False, timeout=60)
        stop = threading.Event()

        def work():
            worker_loop(
                Broker(path),
                ResultCache(tmp_path / "unused-cache"),
                poll=0.02,
                stop=stop.is_set,
            )

        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        try:
            queued = run_sweep(spec, backend=backend)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert queued.to_dict() == serial.to_dict()

    def test_unpicklable_work_falls_back_to_serial(self, tmp_path):
        backend = QueueBackend(tmp_path / "queue.db")
        tasks = _make_tasks(3)
        replicate = lambda x, rng: {"value": float(x)}  # noqa: E731 - unpicklable
        with pytest.raises(Exception):
            pickle.dumps(replicate)
        with pytest.warns(RuntimeWarning, match="serially"):
            results = backend.run_replicates(replicate, tasks)
        assert results == [{"value": 0.0}, {"value": 1.0}, {"value": 2.0}]
        assert backend.broker.stats()["jobs"] == {}

    def test_on_result_sees_tasks_in_order(self, tmp_path):
        backend = QueueBackend(tmp_path / "queue.db", chunk=2, poll=0.01)
        tasks = _make_tasks(5)
        seen = []
        backend.run_replicates(
            _scaled_draw,
            tasks,
            on_result=lambda i, task, sample: seen.append((i, task.x, sample)),
        )
        expected = SerialBackend().run_replicates(_scaled_draw, tasks)
        assert seen == [(i, float(i), expected[i]) for i in range(5)]

    def test_empty_task_list(self, tmp_path):
        backend = QueueBackend(tmp_path / "queue.db")
        assert backend.run_replicates(_scaled_draw, []) == []
