"""Property tests for the optimizer backends: bounds, determinism, extras.

Three families:

* **LP lower bound** — on every randomly built placement program, the LP
  relaxation's objective lower-bounds the MILP's (dropping integrality can
  only enlarge the feasible set).
* **Determinism** — the same spec + seed produce *bit-identical* ledgers in
  two separate processes: the policy consumes no RNG and the HiGHS solve is
  deterministic, so CRN-paired comparisons involving ILP/LP columns stay
  valid across machines and cache reloads.
* **Backend plumbing** — ``auto`` resolution, the graceful ImportError
  naming the ``[opt]`` extra when pulp is absent, and scipy/pulp agreement
  when it is present (each side skip-aware, so the suite is green both with
  and without the extra).
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.optim import (
    BACKENDS,
    IlpPlacement,
    MilpOpt,
    build_placement,
    have_pulp,
    resolve_backend,
)
from repro.algorithms.optim.backends import Program
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace

SLOW = dict(deadline=None)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _random_placement(seed: int, n: int, occupied_mask: int):
    substrate = line(n, seed=seed, unit_latency=False,
                     latency_range=(5.0, 20.0))
    rng = np.random.default_rng(seed)
    demand = rng.integers(0, n, size=int(rng.integers(1, 4 * n)))
    occupied = frozenset(
        node for node in range(n) if occupied_mask & (1 << node)
    )
    return build_placement(
        substrate,
        CostModel.paper_default(),
        demand,
        window_rounds=4,
        epoch_rounds=6,
        occupied=occupied,
        capacities=None if seed % 2 else np.full(n, 3.0),
    )


class TestRelaxationBound:
    @settings(max_examples=20, **SLOW)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 6),
        occupied_mask=st.integers(0, 63),
    )
    def test_lp_objective_lower_bounds_milp(self, seed, n, occupied_mask):
        model = _random_placement(seed, n, occupied_mask)
        lp = model.program.solve(relax=True)
        milp = model.program.solve(relax=False)
        assert lp.objective <= milp.objective + 1e-9

    @settings(max_examples=15, **SLOW)
    @given(seed=st.integers(0, 10_000))
    def test_lp_bound_holds_on_random_programs(self, seed):
        """The invariant is a property of the Program layer itself: on
        arbitrary feasible MILPs, relaxing can only lower the optimum."""
        rng = np.random.default_rng(seed)
        program = Program()
        n_vars = int(rng.integers(2, 8))
        indices = [
            program.variable(
                objective=float(rng.uniform(-5.0, 5.0)),
                ub=float(rng.uniform(1.0, 3.0)),
                integer=bool(rng.random() < 0.7),
            )
            for _ in range(n_vars)
        ]
        for _ in range(int(rng.integers(1, 5))):
            chosen = rng.choice(indices, size=rng.integers(1, n_vars + 1),
                                replace=False)
            terms = [(int(i), float(rng.uniform(0.1, 2.0))) for i in chosen]
            program.constrain(terms, hi=float(rng.uniform(2.0, 8.0)))
        lp = program.solve(relax=True)
        milp = program.solve(relax=False)
        assert lp.objective <= milp.objective + 1e-9


def _hash_result(result) -> str:
    payload = {
        "total": result.total_cost.hex(),
        "latency": [v.hex() for v in result.latency_cost.tolist()],
        "load": [v.hex() for v in result.load_cost.tolist()],
        "running": [v.hex() for v in result.running_cost.tolist()],
        "migration": [v.hex() for v in result.migration_cost.tolist()],
        "creation": [v.hex() for v in result.creation_cost.tolist()],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


_DETERMINISM_SCRIPT = """
import hashlib, json
import numpy as np
import repro.algorithms, repro.workload
from repro.algorithms.optim import IlpPlacement
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.commuter import CommuterScenario

substrate = line(5, seed=7, unit_latency=False, latency_range=(5.0, 20.0))
trace = CommuterScenario(substrate, period=4, sojourn=2).generate(
    30, np.random.default_rng(3)
)
result = simulate(
    substrate,
    IlpPlacement(epoch=5, relax={relax}),
    trace,
    CostModel.paper_default(),
    seed=0,
)
payload = {{
    "total": result.total_cost.hex(),
    "latency": [v.hex() for v in result.latency_cost.tolist()],
    "load": [v.hex() for v in result.load_cost.tolist()],
    "running": [v.hex() for v in result.running_cost.tolist()],
    "migration": [v.hex() for v in result.migration_cost.tolist()],
    "creation": [v.hex() for v in result.creation_cost.tolist()],
}}
print(hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest())
"""


class TestSolverDeterminism:
    @pytest.mark.parametrize("relax", [False, True])
    def test_bit_identical_ledger_across_processes(self, relax):
        """Same spec + seed → the same ledger, down to every float bit,
        in two fresh interpreter processes (and in this one)."""
        script = _DETERMINISM_SCRIPT.format(relax=relax)
        digests = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]

        substrate = line(5, seed=7, unit_latency=False,
                         latency_range=(5.0, 20.0))
        from repro.workload.commuter import CommuterScenario
        trace = CommuterScenario(substrate, period=4, sojourn=2).generate(
            30, np.random.default_rng(3)
        )
        result = simulate(
            substrate,
            IlpPlacement(epoch=5, relax=relax),
            trace,
            CostModel.paper_default(),
            seed=0,
        )
        assert _hash_result(result) == digests[0]


class TestBackendPlumbing:
    def test_backend_names(self):
        assert set(BACKENDS) == {"scipy", "pulp", "auto"}
        assert resolve_backend("scipy") == "scipy"
        with pytest.raises(ValueError, match="unknown solver backend"):
            resolve_backend("glpk")

    def test_auto_resolution_matches_availability(self):
        assert resolve_backend("auto") == (
            "pulp" if have_pulp() else "scipy"
        )

    @pytest.mark.skipif(have_pulp(), reason="pulp installed: nothing to gate")
    def test_missing_pulp_raises_graceful_importerror(self):
        with pytest.raises(ImportError, match=r"pip install .*\[opt\]"):
            resolve_backend("pulp")

    @pytest.mark.skipif(have_pulp(), reason="pulp installed: nothing to gate")
    def test_policy_construction_fails_fast_without_pulp(self):
        with pytest.raises(ImportError, match=r"\[opt\]"):
            IlpPlacement(backend="pulp")

    @pytest.mark.skipif(have_pulp(), reason="pulp installed: nothing to gate")
    def test_milp_opt_solve_fails_gracefully_without_pulp(self):
        """MilpOpt defers the import to solve time; still the same message."""
        substrate = line(2, seed=0)
        trace = Trace((np.zeros(1, np.int64),))
        with pytest.raises(ImportError, match=r"\[opt\]"):
            MilpOpt.solve(substrate, trace, backend="pulp")

    @pytest.mark.skipif(not have_pulp(), reason="needs the [opt] extra")
    def test_pulp_agrees_with_scipy(self):
        """Both backends solve the same program to proven optimality."""
        model = _random_placement(11, 4, 0b0101)
        scipy_solution = model.program.solve(backend="scipy")
        pulp_solution = model.program.solve(backend="pulp")
        assert pulp_solution.backend == "pulp"
        assert scipy_solution.objective == pytest.approx(
            pulp_solution.objective, rel=1e-6
        )
        assert model.active_from(scipy_solution.values, relax=False) == \
            model.active_from(pulp_solution.values, relax=False)

    @pytest.mark.skipif(not have_pulp(), reason="needs the [opt] extra")
    def test_pulp_milp_opt_matches_scipy_bitwise(self):
        """MilpOpt replays its plan, so agreeing plans give equal costs."""
        substrate = line(3, seed=5, unit_latency=False,
                         latency_range=(5.0, 20.0))
        rng = np.random.default_rng(5)
        trace = Trace(tuple(
            rng.integers(0, 3, size=rng.integers(0, 4)) for _ in range(4)
        ))
        scipy_cost, _ = MilpOpt.solve(substrate, trace, backend="scipy")
        pulp_cost, _ = MilpOpt.solve(substrate, trace, backend="pulp")
        assert scipy_cost == pulp_cost
