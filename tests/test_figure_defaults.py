"""Regression pins for the paper-caption defaults of every figure function.

The reproduction contract is that calling ``figures.figureNN()`` with no
arguments runs the experiment with the parameters printed in the paper's
caption (§V). These tests freeze those defaults so a refactor cannot
silently change what "the paper's experiment" means. (DESIGN.md §4 is the
human-readable version of this table.)
"""

import inspect

import pytest

from repro.experiments import figures


def defaults_of(fn):
    return {
        name: parameter.default
        for name, parameter in inspect.signature(fn).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


class TestTrajectoryCaptions:
    def test_figure01_caption(self):
        d = defaults_of(figures.figure01)
        # "runtime was 1000 rounds, T = 14, network of size 1000, λ = 20"
        assert d["horizon"] == 1000
        assert d["period"] == 14
        assert d["n"] == 1000
        assert d["sojourn"] == 20

    def test_figure02_caption(self):
        d = defaults_of(figures.figure02)
        # "runtime was 1000 rounds, T = 12, network of size 500, λ = 20"
        assert d["horizon"] == 1000
        assert d["period"] == 12
        assert d["n"] == 500
        assert d["sojourn"] == 20


class TestSizeSweepCaptions:
    @pytest.mark.parametrize(
        "fn", [figures.figure03, figures.figure04, figures.figure05, figures.figure06]
    )
    def test_caption(self, fn):
        d = defaults_of(fn)
        # "runtime was 500 rounds, λ = 10, averaged over 5 runs"
        assert d["horizon"] == 500
        assert d["sojourn"] == 10
        assert d["runs"] == 5
        assert max(d["sizes"]) == 1000


class TestParameterSweepCaptions:
    def test_figure07_caption(self):
        d = defaults_of(figures.figure07)
        # "runtime 600, λ = 20, network size 1000, averaged over 10 runs"
        assert d["horizon"] == 600
        assert d["sojourn"] == 20
        assert d["n"] == 1000
        assert d["runs"] == 10

    @pytest.mark.parametrize(
        "fn", [figures.figure08, figures.figure09, figures.figure10]
    )
    def test_lambda_sweep_captions(self, fn):
        d = defaults_of(fn)
        # "runtime 900 rounds, T = 10, network size 200, averaged over 10 runs"
        assert d["horizon"] == 900
        assert d["period"] == 10
        assert d["n"] == 200
        assert d["runs"] == 10


class TestOptFigureCaptions:
    def test_figure11_caption(self):
        d = defaults_of(figures.figure11)
        # "runtime 200 rounds, in a network with five nodes, averaged over 10"
        assert d["horizon"] == 200
        assert d["n"] == 5
        assert d["runs"] == 10

    @pytest.mark.parametrize(
        "fn",
        [figures.figure13, figures.figure14, figures.figure15,
         figures.figure16, figures.figure17],
    )
    def test_lambda_ratio_captions(self, fn):
        d = defaults_of(fn)
        # "runtime was 200 rounds, T = 4, network size 5, averaged over 10"
        assert d["horizon"] == 200
        assert d["period"] == 4
        assert d["n"] == 5
        assert d["runs"] == 10
        # λ extends to the horizon so the largest value is a frozen pattern
        assert max(d["lambdas"]) == d["horizon"]

    @pytest.mark.parametrize("fn", [figures.figure18, figures.figure19])
    def test_period_ratio_captions(self, fn):
        d = defaults_of(fn)
        # "runtime 200 rounds, λ = 10, network size five, averaged over ten"
        assert d["horizon"] == 200
        assert d["sojourn"] == 10
        assert d["n"] == 5
        assert d["runs"] == 10

    def test_rocketfuel_caption(self):
        d = defaults_of(figures.rocketfuel_table)
        # "c = 400, β = 40, Ra = 2.5, Ri = 0.5, runtime 600 rounds, λ = 20"
        assert d["horizon"] == 600
        assert d["sojourn"] == 20


class TestSharedConstants:
    def test_default_cost_model_is_papers(self):
        from repro.core.costs import CostModel

        cm = CostModel.paper_default()
        assert (cm.migration, cm.creation) == (40.0, 400.0)
        assert (cm.run_active, cm.run_inactive) == (2.5, 0.5)

    def test_expensive_model_swaps_constants(self):
        from repro.core.costs import CostModel

        cm = CostModel.migration_expensive()
        assert (cm.migration, cm.creation) == (400.0, 40.0)

    def test_onbr_threshold_default_is_two_c(self):
        from repro.algorithms.onbr import OnBR

        assert defaults_of(OnBR.__init__)["threshold_factor"] == 2.0

    def test_onth_small_epoch_default_is_two_beta(self):
        from repro.algorithms.onth import OnTH

        assert defaults_of(OnTH.__init__)["small_epoch_factor"] == 2.0

    def test_cache_defaults_match_paper(self):
        from repro.core.servercache import InactiveServerCache

        cache = InactiveServerCache()
        assert cache.max_size == 3       # "in our simulations: size 3"
        assert cache.expiry_epochs == 20  # "x = 20 in our simulation"
