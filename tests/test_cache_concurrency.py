"""Concurrent writers sharing one :class:`ResultCache` directory.

The sharded-sweep design has N uncoordinated processes writing point
entries into a single cache root. The guarantees under test:

* atomic publishing — a reader (JSON parser included) never observes a
  torn or partially written entry, no matter how many writers race;
* last-writer-wins — concurrent stores of the *same* key leave exactly one
  complete entry behind, and sequential stores serve the newest;
* disjoint keys never interfere — parallel shard processes fill disjoint
  points and a subsequent assembly equals the serial run bit for bit.

Process workers use the ``fork`` start method (inherited memory, no
pickling) and are skipped where it is unavailable.
"""

import json
import multiprocessing
import threading

import pytest

from repro.api.cache import ResultCache
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")


def tiny_experiment(sojourn: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        topology=TopologySpec("erdos_renyi", {"n": 20}),
        scenario=ScenarioSpec("commuter", {"period": 4, "sojourn": sojourn}),
        policies=(PolicySpec("onth", label="ONTH"),),
        horizon=12,
    )


def tiny_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=tiny_experiment(),
        parameter="scenario.sojourn",
        values=(2, 4, 6, 8),
        runs=2,
        seed=3,
        figure="conc",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def hammer_same_key(root, worker_id, iterations):
    """Repeatedly store the same point key with worker-tagged samples."""
    cache = ResultCache(root)
    experiment = tiny_experiment()
    for _ in range(iterations):
        cache.store_point(
            experiment, 0, 0, 2,
            [{"ONTH": float(worker_id)}, {"ONTH": float(worker_id) + 0.5}],
        )


def fill_disjoint_points(root, worker_id, n_points):
    """Store a worker-private slice of point keys (disjoint spawn offsets)."""
    cache = ResultCache(root)
    experiment = tiny_experiment()
    for i in range(worker_id, n_points, 2):
        cache.store_point(
            experiment, 0, i * 2, 2,
            [{"ONTH": float(i)}, {"ONTH": float(i) + 0.5}],
        )


def run_shard(root, index, count):
    run_sweep(tiny_sweep(), cache=ResultCache(root), shard=(index, count))


@fork_only
class TestConcurrentWriters:
    def _processes(self, target, args_list):
        context = multiprocessing.get_context("fork")
        workers = [context.Process(target=target, args=args) for args in args_list]
        for worker in workers:
            worker.start()
        return workers

    def test_same_key_races_never_tear(self, tmp_path):
        workers = self._processes(
            hammer_same_key, [(tmp_path, wid, 60) for wid in (1, 2)]
        )
        reader = ResultCache(tmp_path)
        experiment = tiny_experiment()
        observed = set()
        # Race the readers against the writers: every successful parse must
        # be one writer's complete payload, never an interleaving.
        while any(worker.is_alive() for worker in workers):
            samples = reader.load_point(experiment, 0, 0, 2)
            if samples is not None:
                assert len(samples) == 2
                first = samples[0]["ONTH"]
                assert first in (1.0, 2.0)
                assert samples[1]["ONTH"] == first + 0.5
                observed.add(first)
            for path in reader.entries():
                # Raw reads too: the file on disk is always complete JSON.
                data = json.loads(path.read_text())
                assert len(data["samples"]) == 2
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        final = ResultCache(tmp_path)
        samples = final.load_point(experiment, 0, 0, 2)
        assert samples is not None and samples[0]["ONTH"] in (1.0, 2.0)
        assert final.stats()["entries"] == 1  # equal keys collapse to one file

    def test_disjoint_keys_all_survive(self, tmp_path):
        n_points = 12
        workers = self._processes(
            fill_disjoint_points, [(tmp_path, wid, n_points) for wid in (0, 1)]
        )
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        cache = ResultCache(tmp_path)
        experiment = tiny_experiment()
        for i in range(n_points):
            samples = cache.load_point(experiment, 0, i * 2, 2)
            assert samples == [{"ONTH": float(i)}, {"ONTH": float(i) + 0.5}]
        assert cache.stats()["entries"] == n_points

    def test_concurrent_shards_then_assembly_equals_serial(self, tmp_path):
        spec = tiny_sweep()
        serial = run_sweep(spec)
        workers = self._processes(run_shard, [(tmp_path, 0, 2), (tmp_path, 1, 2)])
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        assembler = ResultCache(tmp_path)
        assembled = run_sweep(spec, cache=assembler)
        assert assembled == serial
        # nothing was simulated during assembly: every point (or the whole
        # sweep, when the faster shard already assembled it) came from disk
        assert assembler.point_stores == 0


def test_sequential_same_key_is_last_writer_wins(tmp_path):
    cache = ResultCache(tmp_path)
    experiment = tiny_experiment()
    cache.store_point(experiment, 0, 0, 1, [{"ONTH": 1.0}])
    cache.store_point(experiment, 0, 0, 1, [{"ONTH": 2.0}])
    assert cache.load_point(experiment, 0, 0, 1) == [{"ONTH": 2.0}]
    assert cache.stats()["entries"] == 1


def test_threaded_writers_share_one_instance(tmp_path):
    # Same-process threads hammer one ResultCache object: counters may race
    # but entries must stay complete and parseable.
    cache = ResultCache(tmp_path)
    experiment = tiny_experiment()

    def write(worker_id):
        for _ in range(40):
            cache.store_point(
                experiment, 0, 4, 2,
                [{"ONTH": float(worker_id)}, {"ONTH": float(worker_id)}],
            )

    threads = [threading.Thread(target=write, args=(wid,)) for wid in (3, 4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    samples = ResultCache(tmp_path).load_point(experiment, 0, 4, 2)
    assert samples is not None and samples[0]["ONTH"] in (3.0, 4.0)
    assert samples[0] == samples[1]
