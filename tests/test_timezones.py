"""Tests for the time-zone scenario (repro.workload.timezones)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.generators import erdos_renyi, line
from repro.workload.base import generate_trace
from repro.workload.timezones import TimeZoneScenario


class TestParameters:
    def test_defaults(self, line5):
        scenario = TimeZoneScenario(line5)
        assert scenario.period == 10
        assert scenario.hotspot_share == 0.5
        assert scenario.requests_per_round == 10

    def test_day_length(self, line5):
        scenario = TimeZoneScenario(line5, period=4, sojourn=7)
        assert scenario.day_length == 28

    def test_hotspot_requests_rounding(self, line5):
        scenario = TimeZoneScenario(line5, hotspot_share=0.5, requests_per_round=3)
        assert scenario.hotspot_requests == 2  # round(1.5)

    def test_period_of(self, line5):
        scenario = TimeZoneScenario(line5, period=3, sojourn=2)
        assert [scenario.period_of(t) for t in range(8)] == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_rejects_bad_share(self, line5):
        with pytest.raises(ValueError, match="hotspot_share"):
            TimeZoneScenario(line5, hotspot_share=1.5)

    def test_rejects_zero_requests(self, line5):
        with pytest.raises(ValueError, match="requests_per_round"):
            TimeZoneScenario(line5, requests_per_round=0)


class TestGeneratedTraces:
    def test_round_size_constant(self, line5):
        scenario = TimeZoneScenario(line5, requests_per_round=7)
        trace = generate_trace(scenario, 30, seed=0)
        assert all(r.size == 7 for r in trace)

    def test_hotspot_dominates_each_round(self):
        sub = erdos_renyi(50, p=0.1, seed=1)
        scenario = TimeZoneScenario(
            sub, period=5, sojourn=4, hotspot_share=0.8, requests_per_round=10
        )
        trace = generate_trace(scenario, 40, seed=2)
        for requests in trace:
            _values, counts = np.unique(requests, return_counts=True)
            assert counts.max() >= 8  # the pinned 80%

    def test_hotspots_repeat_daily(self):
        sub = erdos_renyi(50, p=0.1, seed=1)
        scenario = TimeZoneScenario(
            sub, period=4, sojourn=3, hotspot_share=1.0, requests_per_round=5
        )
        trace = generate_trace(scenario, 2 * scenario.day_length, seed=3)
        day = scenario.day_length
        for t in range(day):
            # share=1.0: the whole round is the hotspot; same node next day
            assert trace[t][0] == trace[t + day][0]

    def test_hotspot_constant_within_period(self):
        sub = erdos_renyi(50, p=0.1, seed=1)
        scenario = TimeZoneScenario(
            sub, period=4, sojourn=5, hotspot_share=1.0, requests_per_round=3
        )
        trace = generate_trace(scenario, 20, seed=4)
        for p in range(4):
            nodes = {int(trace[t][0]) for t in range(p * 5, (p + 1) * 5)}
            assert len(nodes) == 1

    def test_background_uses_access_points_only(self):
        from repro.topology.substrate import Link, Substrate

        sub = Substrate(
            4,
            [Link(0, 1, 1, 1), Link(1, 2, 1, 1), Link(2, 3, 1, 1)],
            access_points=[1, 2],
        )
        scenario = TimeZoneScenario(
            sub, period=2, sojourn=2, hotspot_share=0.0, requests_per_round=6
        )
        trace = generate_trace(scenario, 10, seed=5)
        for requests in trace:
            assert set(requests.tolist()) <= {1, 2}

    def test_zero_share_is_uniform_background(self, line5):
        scenario = TimeZoneScenario(
            line5, hotspot_share=0.0, requests_per_round=4
        )
        trace = generate_trace(scenario, 200, seed=6)
        hist = trace.node_histogram(5)
        assert (hist > 0).all()  # every node eventually hit

    def test_metadata(self, line5):
        scenario = TimeZoneScenario(line5, period=3, sojourn=2)
        trace = generate_trace(scenario, 4, seed=0)
        assert trace.metadata["scenario"] == "timezones"
        assert trace.metadata["period"] == 3


@settings(max_examples=20, deadline=None)
@given(
    share=st.floats(0.0, 1.0),
    requests=st.integers(1, 12),
    seed=st.integers(0, 30),
)
def test_volume_and_split_invariants(share, requests, seed):
    sub = line(20, seed=0)
    scenario = TimeZoneScenario(
        sub, period=3, sojourn=2, hotspot_share=share, requests_per_round=requests
    )
    trace = generate_trace(scenario, 12, seed=seed)
    assert all(r.size == requests for r in trace)
    pinned = scenario.hotspot_requests
    assert 0 <= pinned <= requests
