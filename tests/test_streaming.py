"""Streaming traces: laziness must never change a single bit.

The contract under test: every scenario streamed through
:class:`StreamingTrace` produces ledgers bit-identical to the materialised
:class:`Trace`, from the simulate() level up through declarative sweeps on
every execution backend — laziness is an implementation detail, not a
result change.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import (
    OnTH,
    Opt,
    PolicySpec,
    ProcessPoolBackend,
    QueueBackend,
    ScenarioSpec,
    StreamingScenario,
    StreamingTrace,
    SweepSpec,
    TopologySpec,
    simulate,
)
from repro.api.specs import ExperimentSpec
from repro.api.experiment import run_sweep
from repro.api.registry import resolve_scenario
from repro.workload.base import Trace, as_trace, generate_trace, stream_rounds

DATA = Path(__file__).parent / "data"

#: Every registered scenario exercised for stream/generate bit-identity,
#: with small-substrate-safe parameters.
SCENARIOS = [
    ("commuter", {"period": 4, "sojourn": 2}),
    ("commuter-static", {"period": 4, "sojourn": 2}),
    ("timezones", {"period": 3, "sojourn": 2, "requests_per_round": 4}),
    ("mobility", {"n_users": 6, "mean_sojourn": 3.0}),
    ("gamma", {"rate": 4.0, "cv": 1.5, "burst_length": 3}),
    ("gamma", {"rate": 4.0, "cv": 1.5, "concentration": 0.5}),
    ("flashcrowd", {"event_rate": 0.3, "peak": 10.0, "ramp": 2}),
    ("diurnal", {"n_regions": 2, "day_length": 6}),
    (
        "overlay",
        {
            "parts": [
                {"kind": "commuter", "params": {"period": 4, "sojourn": 2}},
                {"kind": "gamma", "params": {"rate": 2.0, "cv": 1.0}},
            ]
        },
    ),
    (
        "streaming",
        {"scenario": "timezones", "params": {"period": 3, "sojourn": 2}},
    ),
]


def assert_runs_equal(a, b):
    assert a.policy_name == b.policy_name
    assert a.scenario_name == b.scenario_name
    for name in (
        "latency_cost", "load_cost", "running_cost", "migration_cost",
        "creation_cost", "migrations", "creations", "n_active",
        "n_inactive", "n_requests",
    ):
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


class TestStreamingTrace:
    def test_len_and_reiterable(self, line5):
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        st = StreamingTrace(scenario, 12, seed=9)
        assert len(st) == 12
        first = [arr.copy() for arr in st]
        second = list(st)  # same seed replayed => identical rounds
        assert len(first) == len(second) == 12
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_rejects_generator_seed(self, line5):
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        with pytest.raises(TypeError, match="replayable"):
            StreamingTrace(scenario, 5, seed=np.random.default_rng(0))

    def test_rejects_negative_horizon(self, line5):
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        with pytest.raises(ValueError, match="horizon"):
            StreamingTrace(scenario, -1, seed=0)

    def test_none_seed_drawn_once(self, line5):
        scenario = resolve_scenario("timezones")(line5, period=3, sojourn=2)
        st = StreamingTrace(scenario, 8, seed=None)
        for a, b in zip(list(st), list(st)):
            np.testing.assert_array_equal(a, b)

    def test_short_stream_detected(self, line5):
        class Short:
            scenario_name = "short"

            def stream(self, horizon, rng):
                yield np.array([0])  # one round regardless of horizon

        with pytest.raises(RuntimeError, match="streamed 1 rounds"):
            list(StreamingTrace(Short(), 3, seed=0))

    def test_invalid_rounds_detected(self, line5):
        class Bad:
            scenario_name = "bad"

            def stream(self, horizon, rng):
                yield np.array([[0, 1]])

        with pytest.raises(ValueError, match="1-D"):
            list(StreamingTrace(Bad(), 1, seed=0))

    def test_no_max_node_attribute(self, line5):
        # the simulator keys per-round bound checking on its absence
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        st = StreamingTrace(scenario, 4, seed=0)
        assert not hasattr(st, "max_node")

    def test_total_requests_matches_materialised(self, line5):
        scenario = resolve_scenario("mobility")(line5, n_users=5)
        st = StreamingTrace(scenario, 10, seed=3)
        assert st.total_requests == st.materialize().total_requests

    def test_out_of_range_nodes_raise_in_simulate(self, line5):
        class TooBig:
            scenario_name = "toobig"

            def stream(self, horizon, rng):
                for _ in range(horizon):
                    yield np.array([99])

        st = StreamingTrace(TooBig(), 3, seed=0)
        with pytest.raises(ValueError, match="references node 99"):
            simulate(line5, OnTH(), st)


class TestAsTrace:
    def test_trace_passthrough(self, tiny_trace):
        assert as_trace(tiny_trace) is tiny_trace

    def test_streaming_materialises(self, line5):
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        st = StreamingTrace(scenario, 6, seed=1)
        trace = as_trace(st)
        assert isinstance(trace, Trace)
        for a, b in zip(trace, st):
            np.testing.assert_array_equal(a, b)

    def test_plain_iterable(self):
        trace = as_trace([np.array([1]), np.array([0, 2])])
        assert isinstance(trace, Trace)
        assert len(trace) == 2

    def test_requires_full_trace_flags(self):
        assert OnTH.requires_full_trace is False
        assert Opt.requires_full_trace is True


class TestBitIdentity:
    @pytest.mark.parametrize("kind,params", SCENARIOS)
    def test_stream_equals_generate(self, er30, kind, params):
        scenario = resolve_scenario(kind)(er30, **params)
        eager = scenario.generate(20, np.random.default_rng(42))
        lazy = list(stream_rounds(scenario, 20, np.random.default_rng(42)))
        assert len(lazy) == len(eager) == 20
        for a, b in zip(eager, lazy):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind,params", SCENARIOS)
    def test_streaming_ledger_equals_materialised(self, er30, kind, params):
        scenario = resolve_scenario(kind)(er30, **params)
        st = StreamingTrace(scenario, 20, seed=7, scenario_name="s")
        mat = st.materialize()
        assert_runs_equal(
            simulate(er30, OnTH(), st, seed=5),
            simulate(er30, OnTH(), mat, seed=5),
        )

    def test_offline_policy_on_streaming_input(self, line5):
        scenario = resolve_scenario("timezones")(
            line5, period=3, sojourn=2, requests_per_round=2
        )
        st = StreamingTrace(scenario, 12, seed=11)
        assert_runs_equal(
            simulate(line5, Opt(), st, seed=0),
            simulate(line5, Opt(), st.materialize(), seed=0),
        )

    def test_opt_solve_accepts_streaming(self, line5):
        scenario = resolve_scenario("commuter")(line5, period=4, sojourn=2)
        st = StreamingTrace(scenario, 10, seed=2)
        lazy_cost, _ = Opt.solve(line5, st)
        eager_cost, _ = Opt.solve(line5, st.materialize())
        assert lazy_cost == eager_cost


def streaming_spec(materialize: bool, queue_path=None) -> SweepSpec:
    return SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("line", {"n": 5}),
            scenario=ScenarioSpec(
                "streaming",
                {
                    "scenario": "timezones",
                    "params": {"period": 3, "sojourn": 2, "requests_per_round": 3},
                    "materialize": materialize,
                },
            ),
            policies=(PolicySpec("onth"), PolicySpec("onbr")),
            horizon=24,
        ),
        parameter="scenario.params.sojourn",
        values=(2, 4),
        runs=2,
        seed=123,
    )


class TestSpecLevelIdentity:
    """The registered 'streaming' wrapper: lazy == materialised == every
    backend, because both variants consume exactly one seed draw."""

    def test_generate_consumes_one_draw_each(self, line5):
        inner = resolve_scenario("timezones")(line5, period=3, sojourn=2)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        lazy = StreamingScenario(inner, materialize=False).generate(10, rng_a)
        eager = StreamingScenario(inner, materialize=True).generate(10, rng_b)
        assert isinstance(lazy, StreamingTrace)
        assert isinstance(eager, Trace)
        for a, b in zip(lazy, eager):
            np.testing.assert_array_equal(a, b)
        # both rngs advanced identically => downstream draws stay aligned
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)

    def test_generate_trace_accepts_streaming_result(self, line5):
        scenario = resolve_scenario("streaming")(
            line5, scenario="commuter", params={"period": 4, "sojourn": 2}
        )
        st = generate_trace(scenario, 9, seed=4)
        assert isinstance(st, StreamingTrace)
        assert len(st) == 9

    def test_lazy_equals_materialised_sweep(self):
        lazy = run_sweep(streaming_spec(materialize=False))
        eager = run_sweep(streaming_spec(materialize=True))
        assert lazy.to_dict() == eager.to_dict()

    def test_serial_equals_pool_equals_queue(self, tmp_path):
        spec = streaming_spec(materialize=False)
        serial = run_sweep(spec)
        pool = run_sweep(spec, backend=ProcessPoolBackend(2))
        queue = run_sweep(
            spec, backend=QueueBackend(tmp_path / "queue.db", poll=0.01)
        )
        assert serial.to_dict() == pool.to_dict()
        assert serial.to_dict() == queue.to_dict()

    def test_golden_streaming_sweep_pinned(self):
        """One streaming sweep pinned bit-for-bit (see golden_traces.json)."""
        entry = json.loads((DATA / "golden_traces.json").read_text())
        result = run_sweep(streaming_spec(materialize=False))
        assert result.to_dict() == entry["streaming_sweep"]

    def test_params_and_inline_kwargs_conflict(self, line5):
        with pytest.raises(ValueError, match="params"):
            resolve_scenario("streaming")(
                line5, scenario="commuter", params={"sojourn": 2}, sojourn=3
            )
