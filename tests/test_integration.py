"""Integration tests: every algorithm on every scenario on several topologies.

These are end-to-end matrix tests through the public API: build a substrate,
generate a trace, run the policy through the simulator, and check the ledger
invariants that must hold regardless of algorithm or workload:

* the run completes with one record per round;
* total cost equals the component sum;
* at least one server stays active whenever demand exists;
* OPT lower-bounds everything on the small topologies.
"""

import numpy as np
import pytest

import repro
from repro import (
    CommuterScenario,
    CostModel,
    MobilityScenario,
    OffBR,
    OffStat,
    OffTH,
    OnBR,
    OnConf,
    OnTH,
    Opt,
    TimeZoneScenario,
    generate_trace,
    simulate,
)
from repro.topology.generators import grid, line, ring, star

HORIZON = 50

POLICY_FACTORIES = {
    "ONTH": lambda: OnTH(),
    "ONBR": lambda: OnBR(),
    "ONBR-dyn": lambda: OnBR(dynamic_threshold=True),
    "ONCONF": lambda: OnConf(max_servers=2),
    "OPT": lambda: Opt(),
    "OFFBR": lambda: OffBR(),
    "OFFTH": lambda: OffTH(),
    "OFFSTAT": lambda: OffStat(),
}


def scenarios_for(substrate):
    return {
        "commuter-dynamic": CommuterScenario(
            substrate, period=4, sojourn=4, dynamic_load=True
        ),
        "commuter-static": CommuterScenario(
            substrate, period=4, sojourn=4, dynamic_load=False
        ),
        "timezones": TimeZoneScenario(
            substrate, period=4, sojourn=4, requests_per_round=4
        ),
        "mobility": MobilityScenario(substrate, n_users=4, mean_sojourn=5.0),
    }


@pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
@pytest.mark.parametrize(
    "scenario_name", ["commuter-dynamic", "commuter-static", "timezones", "mobility"]
)
def test_policy_scenario_matrix(policy_name, scenario_name, line5_latency, costs):
    scenario = scenarios_for(line5_latency)[scenario_name]
    trace = generate_trace(scenario, HORIZON, seed=17)
    policy = POLICY_FACTORIES[policy_name]()
    result = simulate(line5_latency, policy, trace, costs, seed=3)

    assert result.rounds == HORIZON
    assert result.total_cost == pytest.approx(result.breakdown.total)
    assert (result.n_active >= 1).all()
    assert result.total_cost > 0


@pytest.mark.parametrize("make_substrate", [
    lambda: line(7, seed=1),
    lambda: ring(7, seed=1),
    lambda: star(7, seed=1),
    lambda: grid(3, 3, seed=1),
])
def test_online_algorithms_across_topologies(make_substrate, costs):
    substrate = make_substrate()
    scenario = TimeZoneScenario(substrate, period=3, sojourn=4, requests_per_round=5)
    trace = generate_trace(scenario, HORIZON, seed=23)
    for factory in (OnTH, OnBR):
        result = simulate(substrate, factory(), trace, costs, seed=1)
        assert result.rounds == HORIZON
        assert np.isfinite(result.total_cost)


def test_opt_lower_bounds_all_policies(line5_latency, costs):
    scenario = CommuterScenario(line5_latency, period=4, sojourn=4)
    trace = generate_trace(scenario, HORIZON, seed=31)
    opt_cost, _ = Opt.solve(line5_latency, trace, costs)
    for name, factory in POLICY_FACTORIES.items():
        if name == "OPT":
            continue
        result = simulate(line5_latency, factory(), trace, costs, seed=5)
        assert opt_cost <= result.total_cost + 1e-9, name


def test_shared_trace_makes_algorithms_comparable(line5_latency, costs):
    """Two policies simulated on one trace see identical demand series."""
    scenario = CommuterScenario(line5_latency, period=4, sojourn=4)
    trace = generate_trace(scenario, HORIZON, seed=37)
    a = simulate(line5_latency, OnTH(), trace, costs, seed=0)
    b = simulate(line5_latency, OnBR(), trace, costs, seed=0)
    np.testing.assert_array_equal(a.n_requests, b.n_requests)


def test_expensive_migration_regime_end_to_end(line5_latency, costs_expensive):
    scenario = CommuterScenario(line5_latency, period=4, sojourn=4)
    trace = generate_trace(scenario, HORIZON, seed=41)
    for factory in (OnTH, OnBR, OffStat):
        result = simulate(line5_latency, factory(), trace, costs_expensive, seed=2)
        # β > c: the pricer must never emit a migration
        assert result.total_migrations == 0


def test_public_api_surface():
    """Everything advertised in __all__ is importable and real."""
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_example_runs():
    substrate = repro.erdos_renyi(50, seed=1)
    scenario = repro.CommuterScenario(substrate, sojourn=5)
    trace = repro.generate_trace(scenario, horizon=60, seed=2)
    result = repro.simulate(
        substrate, repro.OnTH(), trace, repro.CostModel.paper_default()
    )
    assert result.total_cost > 0
    assert result.breakdown.total == pytest.approx(result.total_cost)
