"""Tests for vectorised candidate evaluation (repro.core.evaluation).

The key contract: the fast family evaluators agree with brute-force
round-by-round routing through ``route_requests``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.load import QuadraticLoad
from repro.core.routing import route_requests
from repro.topology.generators import erdos_renyi, line


def brute_force_access(substrate, costs, rounds, active):
    total = 0.0
    for requests in rounds:
        total += route_requests(substrate, active, requests, costs).access_cost
    return total


@pytest.fixture
def sub():
    return erdos_renyi(15, p=0.3, seed=11)


@pytest.fixture
def rounds():
    rng = np.random.default_rng(5)
    return [rng.integers(0, 15, size=rng.integers(1, 8)) for _ in range(6)]


class TestAccumulation:
    def test_counts(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        assert batch.n_rounds == 6
        assert batch.total_requests == sum(len(r) for r in rounds)

    def test_clear(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        batch.clear()
        assert batch.n_rounds == 0
        assert batch.total_requests == 0

    def test_round_ids_align(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        ids = batch.round_ids
        assert ids.size == batch.total_requests
        for t, requests in enumerate(rounds):
            assert (ids == t).sum() == len(requests)


class TestExactAccessCost:
    def test_matches_brute_force_linear(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        for active in ([0], [3, 7], [1, 5, 9]):
            fast = batch.exact_access_cost(np.asarray(active))
            slow = brute_force_access(sub, costs, rounds, active)
            assert fast == pytest.approx(slow)

    def test_matches_brute_force_quadratic(self, sub, rounds):
        cm = CostModel.paper_default(load=QuadraticLoad())
        batch = RequestBatch(sub, cm, rounds)
        for active in ([2], [0, 8], [4, 6, 12]):
            fast = batch.exact_access_cost(np.asarray(active))
            slow = brute_force_access(sub, cm, rounds, active)
            assert fast == pytest.approx(slow)

    def test_includes_wireless_hop(self, sub, rounds):
        cm = CostModel.paper_default(wireless_hop=2.0)
        batch = RequestBatch(sub, cm, rounds)
        base = CostModel.paper_default()
        plain = RequestBatch(sub, base, rounds)
        diff = batch.exact_access_cost([0]) - plain.exact_access_cost([0])
        assert diff == pytest.approx(2.0 * batch.total_requests)

    def test_empty_batch_is_zero(self, sub, costs):
        assert RequestBatch(sub, costs).exact_access_cost([1]) == 0.0

    def test_no_servers_raises(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        with pytest.raises(ValueError, match="zero active servers"):
            batch.exact_access_cost(np.zeros(0, dtype=np.int64))


class TestAdditionCosts:
    def test_entries_match_exact_linear(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        active = np.asarray([3, 7])
        vector = batch.addition_costs(active)
        for u in range(sub.n):
            if u in (3, 7):
                expected = batch.exact_access_cost(active)
            else:
                expected = batch.exact_access_cost(np.append(active, u))
            assert vector[u] == pytest.approx(expected), f"node {u}"

    def test_argmin_valid_for_quadratic_shortlist(self, sub, rounds):
        """For convex load the argmin must match exhaustive search."""
        cm = CostModel.paper_default(load=QuadraticLoad())
        batch = RequestBatch(sub, cm, rounds)
        active = np.asarray([3, 7])
        vector = batch.addition_costs(active)
        best = int(np.argmin(vector))
        exhaustive = {
            u: batch.exact_access_cost(np.append(active, u))
            for u in range(sub.n)
            if u not in (3, 7)
        }
        true_best = min(exhaustive, key=exhaustive.get)
        assert exhaustive[best] == pytest.approx(exhaustive[true_best])

    def test_from_empty_active_set(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        vector = batch.addition_costs(np.zeros(0, dtype=np.int64))
        for u in (0, 5, 11):
            assert vector[u] == pytest.approx(batch.exact_access_cost([u]))

    def test_empty_batch_returns_zeros(self, sub, costs):
        vector = RequestBatch(sub, costs).addition_costs(np.asarray([1]))
        np.testing.assert_array_equal(vector, np.zeros(sub.n))


class TestRemovalCosts:
    def test_matches_exact(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        active = np.asarray([1, 6, 10])
        vector = batch.removal_costs(active)
        for i in range(3):
            expected = batch.exact_access_cost(np.delete(active, i))
            assert vector[i] == pytest.approx(expected)

    def test_singleton_returns_inf(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        vector = batch.removal_costs(np.asarray([4]))
        assert np.isinf(vector).all()


class TestMigrationCosts:
    def test_matches_exact_linear(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        active = np.asarray([2, 9])
        for i in range(2):
            vector = batch.migration_costs(active, i)
            rest = np.delete(active, i)
            for u in range(sub.n):
                if u in active:
                    assert np.isinf(vector[u])
                else:
                    expected = batch.exact_access_cost(np.append(rest, u))
                    assert vector[u] == pytest.approx(expected), f"server {i}->node {u}"

    def test_index_out_of_range(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        with pytest.raises(IndexError):
            batch.migration_costs(np.asarray([1]), 3)

    def test_single_server_migration(self, sub, costs, rounds):
        batch = RequestBatch(sub, costs, rounds)
        vector = batch.migration_costs(np.asarray([5]), 0)
        for u in (0, 8):
            assert vector[u] == pytest.approx(batch.exact_access_cost([u]))


@settings(max_examples=25, deadline=None)
@given(
    active=st.sets(st.integers(0, 9), min_size=1, max_size=4),
    seed=st.integers(0, 100),
    n_rounds=st.integers(1, 5),
)
def test_addition_never_increases_access(active, seed, n_rounds):
    """Adding any server can only reduce (or keep) nearest-latency access cost."""
    sub = line(10, seed=0)
    cm = CostModel.paper_default()
    rng = np.random.default_rng(seed)
    rounds = [rng.integers(0, 10, size=4) for _ in range(n_rounds)]
    batch = RequestBatch(sub, cm, rounds)
    active_arr = np.asarray(sorted(active))
    base = batch.exact_access_cost(active_arr)
    vector = batch.addition_costs(active_arr)
    assert (vector <= base + 1e-9).all()


@settings(max_examples=40, deadline=None)
@given(
    bounds=st.lists(
        st.floats(0.0, 1000.0, allow_nan=False), min_size=1, max_size=40
    ),
    gaps=st.lists(
        st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=40
    ),
    masked=st.sets(st.integers(0, 39)),
)
def test_lazy_exact_argmin_bound_soundness(bounds, gaps, masked):
    """The argmin entry of _lazy_exact_argmin is the true exact minimum.

    Sound whenever bound[u] <= exact(u): the returned array's argmin must be
    exactly scored and no candidate's exact value may undercut it, even when
    the bounds order candidates very differently from their exact values.
    Infinite entries (masked candidates) must never be scored.
    """
    size = min(len(bounds), len(gaps))
    bound = np.asarray(bounds[:size], dtype=np.float64)
    exact_values = bound + np.asarray(gaps[:size], dtype=np.float64)
    mask = np.asarray([i in masked for i in range(size)])
    if mask.all():
        mask[0] = False
    bound[mask] = np.inf
    calls = []

    def exact(u):
        calls.append(u)
        assert not mask[u], "scored a masked (infinite-bound) candidate"
        return float(exact_values[u])

    batch = RequestBatch(line(3, seed=0), CostModel.paper_default(), [])
    result = batch._lazy_exact_argmin(bound.copy(), exact)

    best = int(np.argmin(result))
    assert best in calls  # the winner was exactly scored
    assert result[best] == exact_values[best]
    finite = ~mask
    assert result[best] <= exact_values[finite].min() + 1e-12


@settings(max_examples=25, deadline=None)
@given(
    active=st.sets(st.integers(0, 14), min_size=1, max_size=4),
    seed=st.integers(0, 50),
)
def test_addition_argmin_exact_for_convex_load(active, seed):
    """For the non-invariant QuadraticLoad, addition_costs' argmin entry must
    equal the exact access cost of that candidate and undercut all others —
    the lazy-shortlist refinement may leave other entries as lower bounds."""
    sub = erdos_renyi(15, p=0.3, seed=11)
    cm = CostModel.paper_default(load=QuadraticLoad())
    rng = np.random.default_rng(seed)
    rounds = [rng.integers(0, 15, size=rng.integers(1, 6)) for _ in range(4)]
    batch = RequestBatch(sub, cm, rounds)
    active_arr = np.asarray(sorted(active), dtype=np.int64)
    vector = batch.addition_costs(active_arr)
    best = int(np.argmin(vector))

    def exact_with(u):
        if u in set(active_arr.tolist()):
            return batch.exact_access_cost(active_arr)
        return batch.exact_access_cost(np.append(active_arr, u))

    assert vector[best] == pytest.approx(exact_with(best))
    brute_best = min(exact_with(u) for u in range(15))
    assert vector[best] == pytest.approx(brute_best)
