"""Differential tests: OPT against exhaustive brute force on tiny instances.

The OPT dynamic program is the reference every competitive-ratio figure and
every paired comparison divides by, so it gets an *independent* check: on
instances small enough to enumerate (≤ 3 nodes, ≤ 5 rounds), the cheapest
of **all** configuration sequences — priced with the simulator's own
primitives (:func:`route_requests`, :func:`price_transition`,
:meth:`CostModel.running_cost`), not OPT's vectorised tables — must equal
the DP's optimum, which must equal the simulated OPT ledger total.

On top of that, optimality itself is pinned through the paired-comparison
machinery: every no-arg online policy's per-replicate paired difference
against OPT is non-negative on hypothesis-randomised tiny instances — OPT
never loses a single shared-trace replicate, not just the average.
"""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.opt import Opt
from repro.api.experiment import run_replicate, run_sweep
from repro.api.specs import (
    ComparisonSpec,
    CostSpec,
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.routing import route_requests
from repro.core.simulator import simulate
from repro.core.transitions import price_transition
from repro.topology.generators import line
from repro.workload.base import Trace

SLOW = dict(deadline=None)

#: Every registered online policy with a no-argument construction.
_ONLINE_POLICY_KINDS = ("onth", "onbr", "onbr-dyn", "onconf", "wfa")

#: The OPT line substrate of the paper's §V-A, at differential-test size.
_LINE_PARAMS = {"unit_latency": False, "latency_range": (5.0, 20.0)}


def brute_force_optimal(substrate, trace, costs) -> float:
    """The cheapest cost of *any* configuration sequence, by enumeration.

    Mirrors the simulator's §II-E accounting exactly — round ``t``'s
    requests are served by the configuration left after round ``t - 1``,
    then the transition and the new configuration's running costs are paid
    — starting from one active server at the network center (OPT's γ0).
    Every state keeps at least one active server (OPT's ``require_active``
    default). Deliberately priced with the simulator's scalar primitives,
    sharing no code with OPT's vectorised transition/access tables.
    """
    n = substrate.n
    configs = []
    for assignment in product((0, 1, 2), repeat=n):
        active = tuple(i for i, s in enumerate(assignment) if s == 2)
        inactive = tuple(i for i, s in enumerate(assignment) if s == 1)
        if active:
            configs.append(Configuration(active, inactive))
    start = configs.index(Configuration.single(substrate.center))

    access = [
        [
            route_requests(
                substrate,
                np.asarray(config.active, dtype=np.int64),
                trace[t],
                costs,
            ).access_cost
            for config in configs
        ]
        for t in range(len(trace))
    ]
    transition = [
        [
            price_transition(old, new, costs).migration_cost
            + price_transition(old, new, costs).creation_cost
            for new in configs
        ]
        for old in configs
    ]
    running = [costs.running_cost(config) for config in configs]

    best = float("inf")
    for sequence in product(range(len(configs)), repeat=len(trace)):
        previous = start
        total = 0.0
        for t, state in enumerate(sequence):
            total += access[t][previous] + transition[previous][state] \
                + running[state]
            previous = state
        best = min(best, total)
    return best


def random_trace(rng, n_nodes, rounds, max_requests=3) -> Trace:
    return Trace(
        tuple(
            rng.integers(0, n_nodes, size=rng.integers(0, max_requests + 1))
            for _ in range(rounds)
        )
    )


class TestBruteForceDifferential:
    @settings(max_examples=12, **SLOW)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(1, 5),
        beta=st.sampled_from([40.0, 400.0]),
        creation=st.sampled_from([40.0, 400.0]),
    )
    def test_two_node_line_all_sequences(self, seed, rounds, beta, creation):
        substrate = line(2, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, 2, rounds)
        costs = CostModel(migration=beta, creation=creation,
                          run_active=2.5, run_inactive=0.5)
        expected = brute_force_optimal(substrate, trace, costs)
        opt_cost, _plan = Opt.solve(substrate, trace, costs)
        assert opt_cost == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=8, **SLOW)
    @given(
        seed=st.integers(0, 10_000),
        rounds=st.integers(1, 3),
        beta=st.sampled_from([40.0, 400.0]),
    )
    def test_three_node_line_all_sequences(self, seed, rounds, beta):
        """3 nodes → 19 feasible states; ≤ 3 rounds keeps 19^T enumerable."""
        substrate = line(3, seed=seed, **_LINE_PARAMS)
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, 3, rounds)
        costs = CostModel(migration=beta, creation=440.0 - beta,
                          run_active=2.5, run_inactive=0.5)
        expected = brute_force_optimal(substrate, trace, costs)
        opt_cost, _plan = Opt.solve(substrate, trace, costs)
        assert opt_cost == pytest.approx(expected, rel=1e-9)

    def test_dp_value_equals_simulated_opt_ledger(self):
        substrate = line(3, seed=4, **_LINE_PARAMS)
        rng = np.random.default_rng(4)
        trace = random_trace(rng, 3, 5)
        costs = CostModel.paper_default()
        opt_cost, _plan = Opt.solve(substrate, trace, costs)
        policy = Opt()
        result = simulate(substrate, policy, trace, costs, seed=0)
        assert result.total_cost == pytest.approx(opt_cost, rel=1e-9)
        assert result.total_cost == pytest.approx(
            brute_force_optimal(substrate, trace, costs), rel=1e-9
        )


def _tiny_opt_experiment(sojourn, costs) -> ExperimentSpec:
    return ExperimentSpec(
        topology=TopologySpec("line", {"n": 3, **_LINE_PARAMS}),
        scenario=ScenarioSpec(
            "commuter", {"period": 2, "sojourn": sojourn}
        ),
        policies=(
            PolicySpec("opt", label="OPT"),
            *(PolicySpec(kind) for kind in _ONLINE_POLICY_KINDS),
        ),
        costs=costs,
        horizon=5,
    )


class TestOnlinePairedAgainstOpt:
    @settings(max_examples=10, **SLOW)
    @given(
        seed=st.integers(0, 10_000),
        sojourn=st.integers(1, 4),
        expensive=st.booleans(),
    )
    def test_every_replicate_diff_vs_opt_is_nonnegative(
        self, seed, sojourn, expensive
    ):
        """OPT lower-bounds every online policy *per shared-trace replicate*."""
        costs = (
            CostSpec.migration_expensive() if expensive
            else CostSpec.paper_default()
        )
        sample = run_replicate(
            _tiny_opt_experiment(sojourn, costs), np.random.default_rng(seed)
        )
        for label, total in sample.items():
            if label != "OPT":
                assert total - sample["OPT"] >= -1e-6, label

    def test_sweep_comparison_vs_opt_baseline_is_nonnegative(self):
        """The ComparisonSpec path reports the same invariant: every paired
        mean difference against the OPT baseline is >= 0."""
        sweep = SweepSpec(
            experiment=_tiny_opt_experiment(2, CostSpec.paper_default()),
            parameter="scenario.sojourn",
            values=(1, 3),
            runs=3,
            seed=11,
            figure="diff-opt",
            comparison=ComparisonSpec(baseline="OPT"),
        )
        result = run_sweep(sweep)
        assert len(result.comparisons) == len(_ONLINE_POLICY_KINDS)
        for comparison in result.comparisons:
            assert comparison.baseline == "OPT"
            for value in comparison.values:
                assert value >= -1e-6, comparison.contrast
