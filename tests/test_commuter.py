"""Tests for the commuter scenario (repro.workload.commuter)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.generators import erdos_renyi, line
from repro.workload.base import generate_trace
from repro.workload.commuter import CommuterScenario, default_period_for


class TestDefaultPeriod:
    def test_paper_caption_triples(self):
        """T(n) must reproduce the caption pairs of Figures 1, 2 and 8."""
        assert default_period_for(1000) == 14
        assert default_period_for(500) == 12
        assert default_period_for(200) == 10

    def test_clamped_for_tiny_networks(self):
        assert default_period_for(2) == 2
        assert default_period_for(5) == 2

    def test_always_even(self):
        for n in (10, 33, 100, 999):
            assert default_period_for(n) % 2 == 0


class TestStructure:
    def make(self, sub=None, **kwargs):
        sub = sub if sub is not None else line(64, seed=0)
        defaults = dict(period=8, sojourn=3, dynamic_load=True)
        defaults.update(kwargs)
        return CommuterScenario(sub, **defaults)

    def test_fanout_rises_then_falls(self):
        scenario = self.make()
        steps = [scenario.fanout_step(t * 3) for t in range(8)]
        assert steps == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_sojourn_holds_phase(self):
        scenario = self.make()
        assert scenario.fanout_step(0) == scenario.fanout_step(2)
        assert scenario.fanout_step(3) == 1

    def test_day_wraps(self):
        scenario = self.make()
        assert scenario.fanout_step(scenario.day_length) == 0

    def test_peak_values(self):
        scenario = self.make()
        assert scenario.peak_demand == 16
        assert scenario.peak_access_points == 16
        assert scenario.day_length == 24

    def test_dynamic_volume_follows_fanout(self):
        scenario = self.make()
        assert scenario.requests_in_round(0) == 1
        assert scenario.requests_in_round(12) == 16  # phase 4 = midday

    def test_static_volume_constant(self):
        scenario = self.make(dynamic_load=False)
        for t in (0, 3, 12, 21):
            assert scenario.requests_in_round(t) == 16

    def test_rejects_odd_period(self):
        with pytest.raises(ValueError, match="even"):
            self.make(period=5)

    def test_default_period_from_size(self):
        sub = erdos_renyi(200, seed=0)
        scenario = CommuterScenario(sub)
        assert scenario.period == 10


class TestGeneratedTraces:
    def test_dynamic_round_sizes(self):
        sub = line(64, seed=0)
        scenario = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=True)
        trace = generate_trace(scenario, 8, seed=1)
        sizes = [r.size for r in trace]
        assert sizes == [1, 2, 4, 8, 16, 8, 4, 2]

    def test_static_round_sizes_constant(self):
        sub = line(64, seed=0)
        scenario = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=False)
        trace = generate_trace(scenario, 8, seed=1)
        assert all(r.size == 16 for r in trace)

    def test_static_split_is_even_below_saturation(self):
        sub = line(64, seed=0)
        scenario = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=False)
        trace = generate_trace(scenario, 8, seed=1)
        round2 = trace[2]  # 4 access points, 16 requests
        values, counts = np.unique(round2, return_counts=True)
        assert values.size == 4
        np.testing.assert_array_equal(counts, [4, 4, 4, 4])

    def test_first_round_is_the_center(self):
        sub = line(9, seed=0)
        scenario = CommuterScenario(sub, period=4, sojourn=1, dynamic_load=True)
        trace = generate_trace(scenario, 1, seed=0)
        assert trace[0].tolist() == [sub.center]

    def test_points_expand_around_center(self):
        sub = line(33, seed=0)
        scenario = CommuterScenario(sub, period=6, sojourn=1, dynamic_load=True)
        trace = generate_trace(scenario, 4, seed=0)
        center = sub.center
        for requests in trace:
            max_dist = max(sub.distance(center, int(a)) for a in requests)
            # 2^s closest nodes to the center on a path: within distance 2^(s-1)+1
            assert max_dist <= requests.size  # loose monotone envelope

    def test_prefix_nesting(self):
        """The access points of phase s are a subset of phase s+1's."""
        sub = line(33, seed=0)
        scenario = CommuterScenario(sub, period=6, sojourn=1, dynamic_load=True)
        trace = generate_trace(scenario, 4, seed=3)
        for a, b in zip(trace, list(trace)[1:]):
            assert set(a.tolist()) <= set(b.tolist())

    def test_saturation_on_small_substrate(self):
        """2^(T/2) > n: all access points used, volume preserved (static)."""
        sub = line(5, seed=0)
        scenario = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=False)
        trace = generate_trace(scenario, 8, seed=0)
        midday = trace[4]
        assert midday.size == 16  # volume kept
        assert np.unique(midday).size == 5  # all nodes in play

    def test_saturation_dynamic_caps_volume(self):
        sub = line(5, seed=0)
        scenario = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=True)
        trace = generate_trace(scenario, 8, seed=0)
        assert trace[4].size == 5

    def test_same_each_day(self):
        sub = line(64, seed=0)
        scenario = CommuterScenario(sub, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 16, seed=2)
        day = scenario.day_length
        for t in range(8):
            np.testing.assert_array_equal(trace[t], trace[t + day])

    def test_metadata(self):
        sub = line(16, seed=0)
        scenario = CommuterScenario(sub, period=4, sojourn=2, dynamic_load=False)
        trace = generate_trace(scenario, 5, seed=0)
        assert trace.metadata["scenario"] == "commuter"
        assert trace.metadata["dynamic_load"] is False
        assert trace.metadata["period"] == 4


@settings(max_examples=20, deadline=None)
@given(
    period=st.integers(1, 5).map(lambda k: 2 * k),
    sojourn=st.integers(1, 4),
    seed=st.integers(0, 50),
)
def test_static_volume_invariant(period, sojourn, seed):
    """Static load: every round carries exactly 2^(T/2) requests."""
    sub = line(40, seed=0)
    scenario = CommuterScenario(
        sub, period=period, sojourn=sojourn, dynamic_load=False
    )
    trace = generate_trace(scenario, 3 * scenario.day_length, seed=seed)
    expected = 1 << (period // 2)
    assert all(r.size == expected for r in trace)
