"""Unit tests for the optimizer-backed policy family and its figure.

Covers the :class:`IlpPlacement` solver knobs (epoch cadence, demand
window, LP relaxation + deterministic rounding, capacities, the inactive
server cache), the :class:`MilpOpt` guards, registry and spec integration
(solver knobs fold into sweep cache keys), and the golden-pinned ``optim``
comparison figure reproducing its committed output bit-for-bit.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.optim import (
    IlpPlacement,
    MilpOpt,
    build_placement,
    round_fractional,
    unit_loads,
)
from repro.api.registry import resolve_policy
from repro.api.specs import (
    CostSpec,
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.routing import RoutingResult
from repro.core.simulator import simulate
from repro.experiments import figures
from repro.topology.generators import line
from repro.workload.base import Trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_optim.json"

_LINE_PARAMS = {"unit_latency": False, "latency_range": (5.0, 20.0)}


def _empty_routing() -> RoutingResult:
    return RoutingResult(
        latency_cost=0.0,
        load_cost=0.0,
        counts=np.zeros(1, dtype=np.int64),
        assignment=np.zeros(0, dtype=np.int64),
    )


def _drive(policy, substrate, rounds, costs=None):
    """Feed ``rounds`` (lists of access points) through reset/decide."""
    costs = costs or CostModel.paper_default()
    configs = [policy.reset(substrate, costs, np.random.default_rng(0))]
    for t, requests in enumerate(rounds):
        configs.append(
            policy.decide(
                t, np.asarray(requests, dtype=np.int64), _empty_routing()
            )
        )
    return configs


class TestRegistryAndSpecs:
    def test_registry_names_resolve(self):
        assert resolve_policy("ilp") is IlpPlacement
        assert resolve_policy("optim") is IlpPlacement
        assert resolve_policy("lp") is IlpPlacement
        assert resolve_policy("milp-opt") is MilpOpt
        assert resolve_policy("ilp-opt") is MilpOpt

    def test_policy_names_follow_relaxation(self):
        assert IlpPlacement().name == "ILP"
        assert IlpPlacement(relax=True).name == "LP"
        assert MilpOpt().name == "MILP-OPT"

    def test_solver_knobs_fold_into_cache_keys(self):
        def spec(params):
            return ExperimentSpec(
                topology=TopologySpec("line", {"n": 3}),
                scenario=ScenarioSpec("commuter", {"period": 2, "sojourn": 1}),
                policies=(PolicySpec("ilp", params, label="ILP"),),
                costs=CostSpec.paper_default(),
                horizon=5,
            )

        base = spec({"epoch": 10}).cache_key()
        assert spec({"epoch": 10}).cache_key() == base  # deterministic
        assert spec({"epoch": 20}).cache_key() != base
        assert spec({"epoch": 10, "relax": True}).cache_key() != base
        assert spec({"epoch": 10, "window": 30}).cache_key() != base
        assert spec({"epoch": 10, "backend": "auto"}).cache_key() != base
        assert spec({"epoch": 10, "time_limit": 1.0}).cache_key() != base


class TestIlpPlacementKnobs:
    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            IlpPlacement(epoch=0)
        with pytest.raises(ValueError):
            IlpPlacement(window=0)
        with pytest.raises(ValueError):
            IlpPlacement(time_limit=0.0)
        with pytest.raises(ValueError):
            IlpPlacement(max_servers=0)
        with pytest.raises(ValueError):
            IlpPlacement(node_capacity=-1.0)
        with pytest.raises(ValueError, match="unknown solver backend"):
            IlpPlacement(backend="cplex")

    def test_migration_matrix_unsupported(self):
        substrate = line(3, seed=0)
        costs = CostModel(migration_matrix=np.ones((3, 3)) - np.eye(3))
        with pytest.raises(NotImplementedError):
            IlpPlacement().reset(substrate, costs, np.random.default_rng(0))

    def test_start_node_out_of_range(self):
        substrate = line(3, seed=0)
        with pytest.raises(ValueError, match="start node"):
            IlpPlacement(start_node=7).reset(
                substrate, CostModel.paper_default(), np.random.default_rng(0)
            )

    def test_epoch_cadence_holds_configuration_between_solves(self):
        substrate = line(4, seed=1, **_LINE_PARAMS)
        policy = IlpPlacement(epoch=3, start_node=0)
        rounds = [[3, 3]] * 7
        configs = _drive(policy, substrate, rounds)
        assert configs[0] == Configuration.single(0)
        # rounds 0..1 are mid-epoch: configuration unchanged
        assert configs[1] == configs[0]
        assert configs[2] == configs[0]
        # round 2 closes the first epoch: demand at node 3 moves the fleet
        assert configs[3] != configs[0]
        assert 3 in configs[3].active
        # mid-epoch again
        assert configs[4] == configs[3]
        assert configs[5] == configs[3]

    def test_empty_demand_epoch_keeps_fleet(self):
        substrate = line(3, seed=1, **_LINE_PARAMS)
        policy = IlpPlacement(epoch=2, start_node=1)
        configs = _drive(policy, substrate, [[], [], [], []])
        for config in configs:
            assert config.active == (1,)

    def test_deactivated_server_enters_inactive_cache(self):
        substrate = line(4, seed=1, **_LINE_PARAMS)
        policy = IlpPlacement(epoch=2, start_node=0)
        configs = _drive(policy, substrate, [[3], [3]])
        moved = configs[-1]
        assert 3 in moved.active
        # the abandoned start server is cached inactive, not discarded
        assert 0 in moved.inactive

    def test_relaxation_rounds_deterministically(self):
        substrate = line(4, seed=2, **_LINE_PARAMS)
        rounds = [[0, 3], [0, 3], [0, 3]]
        a = _drive(IlpPlacement(epoch=3, relax=True, start_node=1),
                   substrate, rounds)
        b = _drive(IlpPlacement(epoch=3, relax=True, start_node=1),
                   substrate, rounds)
        assert a == b

    def test_node_capacity_spreads_the_fleet(self):
        substrate = line(3, seed=3, **_LINE_PARAMS)
        rounds = [[0, 1, 2]] * 2
        loose = _drive(IlpPlacement(epoch=2, start_node=1), substrate, rounds)
        tight = _drive(
            IlpPlacement(epoch=2, start_node=1, node_capacity=1.0),
            substrate, rounds,
        )
        # one request per node per round forces one server per demand point
        assert tight[-1].n_active == 3
        assert tight[-1].n_active >= loose[-1].n_active

    def test_substrate_capacities_picked_up_automatically(self):
        substrate = line(3, seed=3, capacity=1.0, **_LINE_PARAMS)
        policy = IlpPlacement(epoch=2, start_node=1)
        configs = _drive(policy, substrate, [[0, 1, 2]] * 2)
        assert configs[-1].n_active == 3

    def test_max_servers_caps_the_fleet(self):
        substrate = line(4, seed=4, **_LINE_PARAMS)
        policy = IlpPlacement(epoch=2, start_node=0, max_servers=1)
        configs = _drive(policy, substrate, [[0, 1, 2, 3]] * 4)
        for config in configs:
            assert config.n_active <= 1

    def test_consumes_no_randomness(self):
        """CRN safety: the rng handed to reset is never advanced."""
        substrate = line(3, seed=5, **_LINE_PARAMS)
        rng = np.random.default_rng(42)
        IlpPlacement(epoch=2).reset(
            substrate, CostModel.paper_default(), rng
        )
        untouched = np.random.default_rng(42)
        assert rng.integers(0, 1 << 30) == untouched.integers(0, 1 << 30)


class TestPlacementModel:
    def test_unit_loads_linear_default(self):
        substrate = line(3, seed=0)
        costs = CostModel.paper_default()
        loads = unit_loads(substrate, costs)
        assert loads.shape == (3,)
        assert np.all(loads >= 0)

    def test_round_fractional_ties_to_lower_index(self):
        x = np.array([0.5, 0.5, 0.2])
        assert round_fractional(x, None, 1.0, None) == (0,)

    def test_round_fractional_extends_for_capacity(self):
        x = np.array([0.9, 0.1, 0.0])
        capacities = np.ones(3)
        # rate 2.5 needs three unit-capacity nodes even though Σx rounds to 1
        assert round_fractional(x, capacities, 2.5, None) == (0, 1, 2)

    def test_round_fractional_respects_max_servers(self):
        x = np.array([0.9, 0.8, 0.7])
        assert round_fractional(x, None, 1.0, 2) == (0, 1)

    def test_occupied_nodes_reopen_for_free(self):
        substrate = line(2, seed=0, **_LINE_PARAMS)
        costs = CostModel.paper_default()
        demand = np.array([1, 1, 1], dtype=np.int64)
        free = build_placement(
            substrate, costs, demand, window_rounds=2, epoch_rounds=2,
            occupied=frozenset({1}),
        )
        paid = build_placement(
            substrate, costs, demand, window_rounds=2, epoch_rounds=2,
            occupied=frozenset(),
        )
        assert free.program.solve().objective < paid.program.solve().objective


class TestMilpOptGuards:
    def test_variable_count_guard(self):
        substrate = line(3, seed=0, **_LINE_PARAMS)
        trace = Trace(tuple(
            np.arange(3, dtype=np.int64) for _ in range(6)
        ))
        policy = MilpOpt(max_variables=10)
        policy.prepare(trace)
        with pytest.raises(ValueError, match="use Opt or BeamOpt"):
            policy.reset(
                substrate, CostModel.paper_default(), np.random.default_rng(0)
            )

    def test_reset_before_prepare_raises(self):
        substrate = line(2, seed=0)
        with pytest.raises(RuntimeError, match="prepare"):
            MilpOpt().reset(
                substrate, CostModel.paper_default(), np.random.default_rng(0)
            )

    def test_properties_before_solve_raise(self):
        policy = MilpOpt()
        with pytest.raises(RuntimeError):
            policy.solver_objective
        with pytest.raises(RuntimeError):
            policy.plan

    def test_migration_matrix_unsupported(self):
        substrate = line(3, seed=0, **_LINE_PARAMS)
        costs = CostModel(migration_matrix=np.ones((3, 3)) - np.eye(3))
        policy = MilpOpt()
        policy.prepare(Trace((np.zeros(1, np.int64),)))
        with pytest.raises(NotImplementedError):
            policy.reset(substrate, costs, np.random.default_rng(0))

    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            MilpOpt(max_servers=0)
        with pytest.raises(ValueError):
            MilpOpt(time_limit=-1.0)
        with pytest.raises(ValueError):
            MilpOpt(node_capacity=0.0)

    def test_empty_horizon_solves_trivially(self):
        substrate = line(2, seed=0, **_LINE_PARAMS)
        cost, plan = MilpOpt.solve(substrate, Trace(()))
        assert cost == 0.0
        assert plan == []

    def test_max_servers_bounds_occupancy(self):
        substrate = line(3, seed=1, **_LINE_PARAMS)
        rng = np.random.default_rng(1)
        trace = Trace(tuple(
            rng.integers(0, 3, size=2) for _ in range(4)
        ))
        _, plan = MilpOpt.solve(substrate, trace, max_servers=1)
        for config in plan:
            assert config.n_active + config.n_inactive <= 1


class TestOptimFigure:
    def test_figure_runs_in_the_simulated_pipeline(self):
        result = figures.figure_optim(sojourns=(2,), horizon=20, runs=2)
        data = result.to_dict()
        assert set(data["series"]) == {"ILP", "LP", "ONTH", "ONBR", "OPT"}
        comparisons = {c["contrast"] for c in data["comparisons"]}
        # paired ratios against the ILP baseline, via ComparisonSpec
        assert comparisons == {"LP", "ONTH", "ONBR", "OPT"}
        for comparison in data["comparisons"]:
            assert comparison["baseline"] == "ILP"
            assert comparison["mode"] == "ratio"

    def test_figure_bit_identical_to_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())["optim"]
        params = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in golden["params"].items()
        }
        result = figures.figure_optim(**params).to_dict()
        assert result == golden["result"]

    def test_opt_dominates_every_policy_in_golden(self):
        """Sanity on the pinned numbers: OPT's series is the floor."""
        golden = json.loads(GOLDEN_PATH.read_text())["optim"]
        series = golden["result"]["series"]
        opt = series["OPT"]
        for label, means in series.items():
            for mean, floor in zip(means, opt):
                assert mean >= floor - 1e-9, label


class TestSimulatorIntegration:
    def test_ilp_runs_through_simulate(self):
        substrate = line(5, seed=7, **_LINE_PARAMS)
        rng = np.random.default_rng(3)
        trace = Trace(tuple(
            rng.integers(0, 5, size=rng.integers(0, 4)) for _ in range(25)
        ))
        result = simulate(
            substrate, IlpPlacement(epoch=5), trace,
            CostModel.paper_default(), seed=0,
        )
        assert result.policy_name == "ILP"
        assert result.total_cost > 0
        relaxed = simulate(
            substrate, IlpPlacement(epoch=5, relax=True), trace,
            CostModel.paper_default(), seed=0,
        )
        assert relaxed.policy_name == "LP"

    def test_window_spanning_epochs_changes_decisions(self):
        substrate = line(4, seed=2, **_LINE_PARAMS)
        # demand alternates ends; a long window sees both, a short one only
        # the most recent end
        rounds = [[0], [0], [3], [3]] * 2
        short = _drive(IlpPlacement(epoch=2, start_node=1), substrate, rounds)
        long = _drive(
            IlpPlacement(epoch=2, window=8, start_node=1), substrate, rounds
        )
        assert short != long
