"""Property tests for the confidence estimators (repro.analysis.stats).

The adaptive replication loop trusts these estimators to decide where
simulation time goes, so their invariants are pinned here on hypothesis-
randomised samples: interval/mean containment, ~1/√n halfwidth shrinkage,
the ``level=0`` degenerate interval, bootstrap permutation invariance and
determinism, and the loud rejection of non-finite samples that previously
averaged silently into ``nan`` figures.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    ConfidenceInterval,
    PointSummary,
    average_breakdown,
    average_total,
    confidence_interval,
    mean_stderr,
    point_summary,
    t_critical,
)

#: Finite, well-scaled samples (extreme magnitudes would only test float
#: rounding, not the estimators).
_samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=32),
    min_size=2,
    max_size=30,
)
_levels = st.floats(0.01, 0.999, allow_nan=False)


class TestTCritical:
    def test_matches_normal_quantile_for_large_dof(self):
        assert t_critical(0.95, 10_000) == pytest.approx(1.9602, abs=1e-3)

    def test_exceeds_normal_quantile_for_small_dof(self):
        assert t_critical(0.95, 2) > 1.96

    def test_level_zero_degenerates(self):
        assert t_critical(0.0, 4) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="level"):
            t_critical(1.0, 4)
        with pytest.raises(ValueError, match="degrees of freedom"):
            t_critical(0.95, 0)


class TestConfidenceIntervalProperties:
    @settings(max_examples=60)
    @given(values=_samples, level=_levels)
    def test_t_interval_contains_the_mean(self, values, level):
        ci = confidence_interval(values, level=level, method="t")
        mean = float(np.mean(values))
        assert ci.low <= mean <= ci.high

    @settings(max_examples=40)
    @given(values=_samples, level=_levels)
    def test_bootstrap_interval_is_ordered_and_within_range(self, values, level):
        ci = confidence_interval(values, level=level, method="bootstrap",
                                 n_boot=200)
        assert ci.low <= ci.high
        # bootstrap means are convex combinations of the samples
        assert min(values) - 1e-9 <= ci.low and ci.high <= max(values) + 1e-9

    @settings(max_examples=40)
    @given(values=_samples)
    def test_level_zero_degenerates_to_the_point_estimate(self, values):
        for method in ("t", "bootstrap"):
            ci = confidence_interval(values, level=0.0, method=method)
            assert ci.low == ci.high == pytest.approx(float(np.mean(values)))
            assert ci.halfwidth == 0.0

    @settings(max_examples=40)
    @given(values=_samples, seed=st.integers(0, 2**31))
    def test_bootstrap_is_permutation_invariant(self, values, seed):
        shuffled = list(values)
        np.random.default_rng(seed).shuffle(shuffled)
        a = confidence_interval(values, method="bootstrap", n_boot=150)
        b = confidence_interval(shuffled, method="bootstrap", n_boot=150)
        assert a == b

    @settings(max_examples=30)
    @given(values=_samples)
    def test_bootstrap_is_deterministic(self, values):
        a = confidence_interval(values, method="bootstrap", n_boot=150)
        b = confidence_interval(values, method="bootstrap", n_boot=150)
        assert a == b

    @settings(max_examples=40)
    @given(
        base=st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=3, max_size=8,
        ).filter(lambda vs: float(np.std(vs)) > 1e-6),
        copies=st.integers(2, 6),
    )
    def test_halfwidth_shrinks_like_one_over_sqrt_n(self, base, copies):
        """Replicating a sample k× shrinks the t halfwidth ≈ 1/√k.

        Tiling keeps the sample standard deviation (up to the ddof=1
        correction), so the stderr scales as 1/√(kn) and the t critical
        value only moves toward the (smaller) normal quantile — the
        halfwidth must drop at least as fast as √(k)·(small slack).
        """
        small = confidence_interval(base, method="t")
        large = confidence_interval(base * copies, method="t")
        assert large.halfwidth <= small.halfwidth / math.sqrt(copies) * 1.05

    def test_single_sample_degenerates(self):
        for method in ("t", "bootstrap"):
            ci = confidence_interval([7.5], method=method)
            assert ci.low == ci.high == 7.5

    def test_constant_samples_degenerate(self):
        ci = confidence_interval([3.0, 3.0, 3.0], method="bootstrap")
        assert ci.low == ci.high == 3.0

    def test_rejects_empty_and_bad_arguments(self):
        with pytest.raises(ValueError, match="at least one"):
            confidence_interval([])
        with pytest.raises(ValueError, match="method"):
            confidence_interval([1.0], method="jackknife")
        with pytest.raises(ValueError, match="level"):
            confidence_interval([1.0], level=1.0)
        with pytest.raises(ValueError, match="n_boot"):
            confidence_interval([1.0, 2.0], method="bootstrap", n_boot=0)

    def test_rejects_non_finite_samples(self):
        with pytest.raises(ValueError, match="finite"):
            confidence_interval([1.0, float("nan")])
        with pytest.raises(ValueError, match="finite"):
            confidence_interval([1.0, float("inf")], method="bootstrap")

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="inverted"):
            ConfidenceInterval(2.0, 1.0, 0.95)
        with pytest.raises(ValueError, match="method"):
            ConfidenceInterval(1.0, 2.0, 0.95, method="magic")


class TestPointSummary:
    def test_fields_and_halfwidth(self):
        summary = point_summary([10.0, 12.0, 14.0], level=0.95)
        assert summary.n == 3
        assert summary.mean == pytest.approx(12.0)
        assert summary.halfwidth == pytest.approx(
            t_critical(0.95, 2) * summary.stderr
        )

    def test_meets_absolute_and_relative(self):
        summary = point_summary([10.0, 12.0, 14.0])
        assert summary.meets(summary.halfwidth + 1e-9)
        assert not summary.meets(summary.halfwidth / 2)
        assert summary.meets(summary.relative_halfwidth() + 1e-12,
                             relative=True)

    def test_single_sample_never_meets_a_positive_target(self):
        summary = point_summary([5.0])
        assert summary.halfwidth == 0.0
        assert not summary.meets(10.0)
        assert summary.meets(0.0)  # the degenerate target is already exact

    def test_zero_mean_relative_halfwidth(self):
        spread = point_summary([-1.0, 1.0])
        assert spread.relative_halfwidth() == math.inf
        flat = point_summary([0.0, 0.0])
        assert flat.relative_halfwidth() == 0.0

    def test_meets_rejects_negative_target(self):
        with pytest.raises(ValueError, match="target"):
            point_summary([1.0, 2.0]).meets(-0.1)


class TestMeanStderrEdgeCases:
    """The docstring/behaviour contract: loud errors, never silent nan."""

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            mean_stderr([1.0, float("nan"), 3.0])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            mean_stderr([float("-inf")])

    def test_n0_rejected_n1_degenerate(self):
        with pytest.raises(ValueError, match="at least one"):
            mean_stderr([])
        out = mean_stderr([4.0])
        assert (out.mean, out.stderr, out.n) == (4.0, 0.0, 1)


class TestRunAveragingEdgeCases:
    """n=0 and n=1 across average_total / average_breakdown."""

    def _one_run(self):
        from repro.algorithms.onth import OnTH
        from repro.core.costs import CostModel
        from repro.core.simulator import simulate
        from repro.topology.generators import line
        from repro.workload.base import generate_trace
        from repro.workload.commuter import CommuterScenario

        substrate = line(5)
        scenario = CommuterScenario(substrate, period=4, sojourn=3)
        trace = generate_trace(scenario, 20, seed=0)
        return simulate(substrate, OnTH(), trace, CostModel.paper_default())

    def test_average_total_n0_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            average_total([])

    def test_average_breakdown_n0_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            average_breakdown([])

    def test_n1_is_the_identity(self):
        run = self._one_run()
        stat = average_total([run])
        assert stat.n == 1 and stat.stderr == 0.0
        assert stat.mean == pytest.approx(run.total_cost)
        breakdown = average_breakdown([run])
        assert breakdown.total == pytest.approx(run.breakdown.total)
        assert breakdown.access == pytest.approx(run.breakdown.access)
