"""Smoke tests for the example scripts in examples/.

The quickstart runs end-to-end as a subprocess; the heavier examples are
compile-checked and their main() entry points type-checked for presence so
that a README user never hits an import error.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
ALL_SCRIPTS = sorted(EXAMPLES.glob("*.py"))


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestInventory:
    def test_at_least_four_examples(self):
        assert len(ALL_SCRIPTS) >= 4

    def test_expected_scripts_exist(self):
        names = {p.name for p in ALL_SCRIPTS}
        assert "quickstart.py" in names
        assert "sap_timezones.py" in names
        assert "mobile_gaming_commuter.py" in names
        assert "migration_value.py" in names


@pytest.mark.parametrize("script", ALL_SCRIPTS, ids=lambda p: p.stem)
class TestEveryExample:
    def test_compiles(self, script):
        source = script.read_text()
        compile(source, str(script), "exec")

    def test_has_main_and_docstring(self, script):
        module = load_module(script)
        assert callable(getattr(module, "main", None)), "examples expose main()"
        assert (module.__doc__ or "").strip(), "examples document themselves"


def test_quickstart_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "flexibility advantage" in proc.stdout
    assert "total cost" in proc.stdout
