"""Tests for the substrate network model (repro.topology.substrate)."""

import numpy as np
import pytest

from repro.topology.substrate import Link, Substrate


def make_path(n=4, latency=1.0):
    links = [Link(i, i + 1, latency, 1.544) for i in range(n - 1)]
    return Substrate(n, links)


class TestLink:
    def test_normalises_endpoint_order(self):
        link = Link(3, 1, 2.0, 1.544)
        assert link.endpoints == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link(2, 2, 1.0, 1.0)

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError, match="latency"):
            Link(0, 1, 0.0, 1.0)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Link(0, 1, 1.0, -2.0)

    def test_equality_after_normalisation(self):
        assert Link(3, 1, 2.0, 1.0) == Link(1, 3, 2.0, 1.0)


class TestConstruction:
    def test_basic_properties(self):
        sub = make_path(4)
        assert sub.n == 4
        assert sub.n_links == 3
        assert sub.name == "substrate"

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            Substrate(0, [])

    def test_rejects_out_of_range_link(self):
        with pytest.raises(ValueError, match="outside"):
            Substrate(2, [Link(0, 5, 1.0, 1.0)])

    def test_rejects_duplicate_link(self):
        with pytest.raises(ValueError, match="duplicate"):
            Substrate(2, [Link(0, 1, 1.0, 1.0), Link(1, 0, 2.0, 1.0)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            Substrate(4, [Link(0, 1, 1.0, 1.0), Link(2, 3, 1.0, 1.0)])

    def test_single_node_is_legal(self):
        sub = Substrate(1, [])
        assert sub.n == 1
        assert sub.diameter == 0.0

    def test_scalar_strength_broadcasts(self):
        sub = Substrate(3, [Link(0, 1, 1, 1), Link(1, 2, 1, 1)], strengths=2.5)
        np.testing.assert_array_equal(sub.strengths, [2.5, 2.5, 2.5])

    def test_vector_strengths(self):
        sub = Substrate(
            3, [Link(0, 1, 1, 1), Link(1, 2, 1, 1)], strengths=[1.0, 2.0, 3.0]
        )
        np.testing.assert_array_equal(sub.strengths, [1.0, 2.0, 3.0])

    def test_rejects_wrong_strength_shape(self):
        with pytest.raises(ValueError, match="strengths"):
            Substrate(3, [Link(0, 1, 1, 1), Link(1, 2, 1, 1)], strengths=[1.0, 2.0])

    def test_rejects_non_positive_strength(self):
        with pytest.raises(ValueError, match="strengths"):
            Substrate(
                2, [Link(0, 1, 1, 1)], strengths=[1.0, 0.0]
            )

    def test_strengths_read_only(self):
        sub = make_path(3)
        with pytest.raises(ValueError):
            sub.strengths[0] = 9.0


class TestAccessPoints:
    def test_default_all_nodes(self):
        sub = make_path(4)
        np.testing.assert_array_equal(sub.access_points, [0, 1, 2, 3])

    def test_subset(self):
        sub = Substrate(
            3, [Link(0, 1, 1, 1), Link(1, 2, 1, 1)], access_points=[2, 0]
        )
        np.testing.assert_array_equal(sub.access_points, [0, 2])

    def test_duplicates_removed(self):
        sub = Substrate(
            3, [Link(0, 1, 1, 1), Link(1, 2, 1, 1)], access_points=[1, 1, 2]
        )
        np.testing.assert_array_equal(sub.access_points, [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="access point"):
            Substrate(2, [Link(0, 1, 1, 1)], access_points=[])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="access points"):
            Substrate(2, [Link(0, 1, 1, 1)], access_points=[5])


class TestDistances:
    def test_path_distances(self):
        sub = make_path(4)
        expected = np.abs(np.subtract.outer(np.arange(4), np.arange(4)))
        np.testing.assert_allclose(sub.distances, expected)

    def test_distances_cached_and_shared(self):
        sub = make_path(3)
        assert sub.distances is sub.distances

    def test_distances_read_only(self):
        sub = make_path(3)
        with pytest.raises(ValueError):
            sub.distances[0, 0] = 1.0

    def test_weighted_distances(self):
        links = [Link(0, 1, 5.0, 1.0), Link(1, 2, 7.0, 1.0), Link(0, 2, 20.0, 1.0)]
        sub = Substrate(3, links)
        assert sub.distance(0, 2) == 12.0  # via node 1, not the direct link

    def test_distance_symmetric(self):
        sub = make_path(5)
        assert sub.distance(1, 4) == sub.distance(4, 1) == 3.0

    def test_distance_checks_range(self):
        sub = make_path(3)
        with pytest.raises(ValueError, match="node"):
            sub.distance(0, 3)

    def test_matches_networkx(self):
        """Cross-check Dijkstra against networkx on a random weighted graph."""
        import networkx as nx

        rng = np.random.default_rng(0)
        g = nx.gnp_random_graph(12, 0.4, seed=1)
        assert nx.is_connected(g)
        links = [
            Link(u, v, float(rng.uniform(1, 10)), 1.0) for u, v in g.edges()
        ]
        sub = Substrate(12, links)
        for link in links:
            g[link.u][link.v]["weight"] = link.latency
        nx_dist = dict(nx.all_pairs_dijkstra_path_length(g))
        for u in range(12):
            for v in range(12):
                assert sub.distance(u, v) == pytest.approx(nx_dist[u][v])


class TestCenterAndTopologyQueries:
    def test_path_center_is_middle(self):
        assert make_path(5).center == 2

    def test_center_tie_breaks_to_lowest_index(self):
        assert make_path(4).center == 1  # nodes 1 and 2 tie

    def test_star_center_is_hub(self):
        links = [Link(0, i, 1.0, 1.0) for i in range(1, 6)]
        sub = Substrate(6, links)
        assert sub.center == 0

    def test_nodes_by_distance_starts_with_self(self):
        sub = make_path(5)
        order = sub.nodes_by_distance_from(3)
        assert order[0] == 3
        assert set(order.tolist()) == set(range(5))

    def test_nodes_by_distance_monotone(self):
        sub = make_path(6)
        order = sub.nodes_by_distance_from(2)
        dists = [sub.distance(2, int(v)) for v in order]
        assert dists == sorted(dists)

    def test_eccentricity_and_diameter(self):
        sub = make_path(5)
        assert sub.eccentricity(0) == 4.0
        assert sub.eccentricity(2) == 2.0
        assert sub.diameter == 4.0

    def test_degree_and_neighbors(self):
        sub = make_path(4)
        assert sub.degree(0) == 1
        assert sub.degree(1) == 2
        np.testing.assert_array_equal(sub.neighbors(1), [0, 2])

    def test_neighbors_checks_range(self):
        with pytest.raises(ValueError, match="node"):
            make_path(3).neighbors(9)


class TestCapacities:
    def test_default_is_uncapacitated(self):
        sub = make_path(4)
        assert sub.capacities is None
        assert not sub.capacitated

    def test_scalar_broadcasts(self):
        links = [Link(i, i + 1, 1.0, 1.544) for i in range(3)]
        sub = Substrate(4, links, capacities=2.5)
        assert sub.capacitated
        np.testing.assert_array_equal(sub.capacities, np.full(4, 2.5))

    def test_vector_shape_checked(self):
        links = [Link(0, 1, 1.0, 1.544)]
        with pytest.raises(ValueError, match="capacities"):
            Substrate(2, links, capacities=np.ones(3))

    def test_capacities_must_be_positive(self):
        links = [Link(0, 1, 1.0, 1.544)]
        with pytest.raises(ValueError, match="> 0"):
            Substrate(2, links, capacities=np.array([1.0, 0.0]))

    def test_capacities_view_is_read_only(self):
        links = [Link(0, 1, 1.0, 1.544)]
        sub = Substrate(2, links, capacities=1.0)
        with pytest.raises(ValueError):
            sub.capacities[0] = 9.0

    def test_with_capacities_clones_and_shares_distances(self):
        sub = make_path(5)
        base = sub.distances  # force the cache
        capped = sub.with_capacities(3.0)
        assert capped.capacitated
        assert not sub.capacitated  # the original is untouched
        assert capped.distances is base  # cache shared, not recomputed
        uncapped = capped.with_capacities(None)
        assert not uncapped.capacitated
