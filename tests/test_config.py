"""Tests for server configurations (repro.core.config)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Configuration


class TestConstruction:
    def test_active_is_sorted(self):
        cfg = Configuration((3, 1, 2))
        assert cfg.active == (1, 2, 3)

    def test_inactive_order_preserved(self):
        cfg = Configuration((), (5, 3, 9))
        assert cfg.inactive == (5, 3, 9)

    def test_rejects_duplicate_active(self):
        with pytest.raises(ValueError, match="duplicate active"):
            Configuration((1, 1))

    def test_rejects_duplicate_inactive(self):
        with pytest.raises(ValueError, match="duplicate inactive"):
            Configuration((), (2, 2))

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="both"):
            Configuration((1, 2), (2,))

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="non-negative"):
            Configuration((-1,))

    def test_of_accepts_iterables(self):
        cfg = Configuration.of({3, 1}, [7])
        assert cfg.active == (1, 3)
        assert cfg.inactive == (7,)

    def test_single(self):
        cfg = Configuration.single(4)
        assert cfg.active == (4,)
        assert cfg.n_servers == 1

    def test_empty(self):
        cfg = Configuration.empty()
        assert cfg.n_servers == 0


class TestQueries:
    def test_counts(self):
        cfg = Configuration((1, 2), (3, 4, 5))
        assert cfg.n_active == 2
        assert cfg.n_inactive == 3
        assert cfg.n_servers == 5

    def test_occupied(self):
        cfg = Configuration((1,), (2,))
        assert cfg.occupied == frozenset({1, 2})

    def test_hosts_checks(self):
        cfg = Configuration((1,), (2,))
        assert cfg.hosts_active(1) and not cfg.hosts_active(2)
        assert cfg.hosts_inactive(2) and not cfg.hosts_inactive(1)

    def test_hashable_and_equal(self):
        a = Configuration((2, 1), (3,))
        b = Configuration((1, 2), (3,))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inactive_order_distinguishes(self):
        """FIFO order is semantic: different order, different configuration."""
        a = Configuration((), (1, 2))
        b = Configuration((), (2, 1))
        assert a != b


class TestFunctionalUpdates:
    def test_with_active(self):
        cfg = Configuration((1,)).with_active(3)
        assert cfg.active == (1, 3)

    def test_with_active_rejects_occupied(self):
        with pytest.raises(ValueError, match="already hosts"):
            Configuration((1,), (2,)).with_active(2)

    def test_without_active(self):
        cfg = Configuration((1, 2)).without_active(1)
        assert cfg.active == (2,)

    def test_without_active_rejects_missing(self):
        with pytest.raises(ValueError, match="no active"):
            Configuration((1,)).without_active(9)

    def test_move_active(self):
        cfg = Configuration((1, 2), (5,)).move_active(2, 7)
        assert cfg.active == (1, 7)
        assert cfg.inactive == (5,)

    def test_move_active_to_same_node_is_noop(self):
        cfg = Configuration((1,))
        assert cfg.move_active(1, 1) is cfg

    def test_move_active_rejects_occupied_target(self):
        with pytest.raises(ValueError, match="already hosts"):
            Configuration((1, 2)).move_active(1, 2)

    def test_move_active_rejects_missing_source(self):
        with pytest.raises(ValueError, match="no active"):
            Configuration((1,)).move_active(5, 6)

    def test_replace_inactive(self):
        cfg = Configuration((1,), (2,)).replace_inactive((8, 9))
        assert cfg.inactive == (8, 9)

    def test_only_active(self):
        cfg = Configuration((1, 2), (3,)).only_active()
        assert cfg.inactive == ()
        assert cfg.active == (1, 2)

    def test_updates_do_not_mutate_original(self):
        cfg = Configuration((1,), (2,))
        cfg.with_active(5)
        cfg.replace_inactive(())
        assert cfg == Configuration((1,), (2,))


@settings(max_examples=50, deadline=None)
@given(
    active=st.sets(st.integers(0, 20), max_size=6),
    inactive=st.sets(st.integers(21, 40), max_size=6),
)
def test_invariants_hold_for_arbitrary_disjoint_sets(active, inactive):
    cfg = Configuration.of(active, inactive)
    assert set(cfg.active) == active
    assert set(cfg.inactive) == inactive
    assert cfg.n_servers == len(active) + len(inactive)
    assert cfg.occupied == frozenset(active) | frozenset(inactive)
    assert cfg == Configuration.of(sorted(active, reverse=True), cfg.inactive)
