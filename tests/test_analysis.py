"""Tests for repro.analysis (competitive ratios and statistics)."""

import numpy as np
import pytest

from repro.algorithms.onth import OnTH
from repro.analysis.competitive import competitive_ratio_vs_opt, cost_ratio
from repro.analysis.stats import (
    average_breakdown,
    average_total,
    mean_stderr,
)
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.workload.base import generate_trace
from repro.workload.commuter import CommuterScenario


class TestCostRatio:
    def test_basic(self):
        assert cost_ratio(10.0, 5.0) == 2.0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError, match="non-positive"):
            cost_ratio(10.0, 0.0)

    def test_rejects_negative_denominator(self):
        with pytest.raises(ValueError, match="non-positive"):
            cost_ratio(10.0, -3.0)


class TestCompetitiveRatio:
    def test_ratio_at_least_one(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 50, seed=1)
        ratio, policy_cost, opt_cost = competitive_ratio_vs_opt(
            line5_latency, OnTH(), trace, costs, seed=0
        )
        assert ratio >= 1.0 - 1e-9
        assert policy_cost == pytest.approx(ratio * opt_cost)

    def test_default_cost_model(self, line5_latency):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 30, seed=2)
        ratio, _, _ = competitive_ratio_vs_opt(line5_latency, OnTH(), trace)
        assert ratio >= 1.0 - 1e-9


class TestMeanStderr:
    def test_single_value(self):
        out = mean_stderr([4.0])
        assert out.mean == 4.0 and out.stderr == 0.0 and out.n == 1

    def test_known_values(self):
        out = mean_stderr([1.0, 2.0, 3.0])
        assert out.mean == pytest.approx(2.0)
        assert out.stderr == pytest.approx(1.0 / np.sqrt(3))
        assert out.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            mean_stderr([])

    def test_str_format(self):
        assert "±" in str(mean_stderr([1.0, 3.0]))


class TestRunAggregation:
    def make_runs(self, line5, costs):
        scenario = CommuterScenario(line5, period=4, sojourn=3)
        runs = []
        for seed in range(3):
            trace = generate_trace(scenario, 20, seed=seed)
            runs.append(simulate(line5, OnTH(), trace, costs))
        return runs

    def test_average_total(self, line5, costs):
        runs = self.make_runs(line5, costs)
        stat = average_total(runs)
        assert stat.n == 3
        assert stat.mean == pytest.approx(
            np.mean([r.total_cost for r in runs])
        )

    def test_average_breakdown_components(self, line5, costs):
        runs = self.make_runs(line5, costs)
        bd = average_breakdown(runs)
        assert bd.access == pytest.approx(
            np.mean([r.breakdown.access for r in runs])
        )
        assert bd.total == pytest.approx(
            np.mean([r.total_cost for r in runs])
        )

    def test_average_breakdown_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            average_breakdown([])
