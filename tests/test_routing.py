"""Tests for request routing (repro.core.routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.load import QuadraticLoad
from repro.core.routing import (
    RoutingStrategy,
    nearest_latency_cost,
    route_requests,
)
from repro.topology.generators import erdos_renyi, line


@pytest.fixture
def path5():
    return line(5, seed=0)


class TestNearestRouting:
    def test_single_server_gets_everything(self, path5, costs):
        out = route_requests(path5, [2], np.array([0, 1, 4]), costs)
        np.testing.assert_array_equal(out.assignment, [0, 0, 0])
        # distances 2 + 1 + 2 = 5
        assert out.latency_cost == pytest.approx(5.0)
        np.testing.assert_array_equal(out.counts, [3])

    def test_requests_pick_closest(self, path5, costs):
        out = route_requests(path5, [0, 4], np.array([0, 1, 3, 4]), costs)
        np.testing.assert_array_equal(out.assignment, [0, 0, 1, 1])
        assert out.latency_cost == pytest.approx(0 + 1 + 1 + 0)

    def test_linear_load_counts(self, path5, costs):
        out = route_requests(path5, [0, 4], np.array([0, 0, 4]), costs)
        np.testing.assert_array_equal(out.counts, [2, 1])
        assert out.load_cost == pytest.approx(3.0)  # linear, strength 1

    def test_access_cost_is_latency_plus_load(self, path5, costs):
        out = route_requests(path5, [2], np.array([0, 4]), costs)
        assert out.access_cost == pytest.approx(out.latency_cost + out.load_cost)

    def test_wireless_hop_added_per_request(self, path5):
        cm = CostModel.paper_default(wireless_hop=1.5)
        out = route_requests(path5, [2], np.array([2, 2]), cm)
        assert out.latency_cost == pytest.approx(3.0)

    def test_empty_round_is_free(self, path5, costs):
        out = route_requests(path5, [1], np.zeros(0, dtype=np.int64), costs)
        assert out.access_cost == 0.0
        assert out.assignment.size == 0

    def test_no_servers_raises(self, path5, costs):
        with pytest.raises(ValueError, match="no active servers"):
            route_requests(path5, [], np.array([1]), costs)

    def test_empty_round_no_servers_ok(self, path5, costs):
        out = route_requests(path5, [], np.zeros(0, dtype=np.int64), costs)
        assert out.access_cost == 0.0

    def test_node_strengths_enter_load(self):
        sub = line(3, seed=0)
        strong = erdos_renyi(3, p=1.0, seed=0)  # placeholder, rebuilt below
        from repro.topology.substrate import Link, Substrate

        sub2 = Substrate(
            3,
            [Link(0, 1, 1, 1), Link(1, 2, 1, 1)],
            strengths=[1.0, 4.0, 1.0],
        )
        cm = CostModel.paper_default()
        out = route_requests(sub2, [1], np.array([1, 1, 1, 1]), cm)
        assert out.load_cost == pytest.approx(1.0)  # 4 requests / strength 4


class TestLoadAwareRouting:
    def test_balances_quadratic_load(self, path5):
        cm = CostModel.paper_default(load=QuadraticLoad())
        requests = np.full(8, 2)  # all at the middle
        near = route_requests(path5, [1, 3], requests, cm, RoutingStrategy.NEAREST)
        aware = route_requests(path5, [1, 3], requests, cm, RoutingStrategy.LOAD_AWARE)
        # nearest ties all to server index 0; aware splits 4/4
        np.testing.assert_array_equal(np.sort(aware.counts), [4, 4])
        assert aware.access_cost < near.access_cost

    def test_matches_nearest_for_linear_uniform(self, path5, costs):
        requests = np.array([0, 1, 2, 3, 4, 4])
        near = route_requests(path5, [0, 4], requests, costs, RoutingStrategy.NEAREST)
        aware = route_requests(
            path5, [0, 4], requests, costs, RoutingStrategy.LOAD_AWARE
        )
        assert aware.access_cost == pytest.approx(near.access_cost)

    def test_counts_sum_to_requests(self, path5, costs):
        requests = np.array([0, 2, 2, 3])
        out = route_requests(
            path5, [1, 4], requests, costs, RoutingStrategy.LOAD_AWARE
        )
        assert out.counts.sum() == 4


class TestNearestLatencyCost:
    def test_matches_route_requests(self, path5, costs):
        requests = np.array([0, 1, 3, 4, 4])
        full = route_requests(path5, [0, 3], requests, costs)
        fast = nearest_latency_cost(path5, [0, 3], requests)
        assert fast == pytest.approx(full.latency_cost)

    def test_empty_requests(self, path5):
        assert nearest_latency_cost(path5, [1], np.zeros(0, dtype=np.int64)) == 0.0

    def test_no_servers_raises(self, path5):
        with pytest.raises(ValueError, match="no active servers"):
            nearest_latency_cost(path5, [], np.array([0]))


@settings(max_examples=30, deadline=None)
@given(
    servers=st.sets(st.integers(0, 19), min_size=1, max_size=5),
    requests=st.lists(st.integers(0, 19), min_size=0, max_size=30),
)
def test_nearest_is_latency_optimal(servers, requests):
    """No assignment has lower latency than per-request nearest choice."""
    sub = erdos_renyi(20, p=0.2, seed=3)
    cm = CostModel.paper_default()
    req = np.asarray(requests, dtype=np.int64)
    out = route_requests(sub, sorted(servers), req, cm)

    server_list = sorted(servers)
    brute = sum(
        min(sub.distance(int(a), s) for s in server_list) for a in requests
    )
    assert out.latency_cost == pytest.approx(brute)


@settings(max_examples=30, deadline=None)
@given(
    servers=st.sets(st.integers(0, 14), min_size=1, max_size=5),
    requests=st.lists(st.integers(0, 14), min_size=0, max_size=25),
)
def test_load_aware_tie_break_is_lowest_server_index(servers, requests):
    """The greedy load-aware router is deterministic: at every step it picks
    the *lowest-indexed* server among those minimising marginal cost, so two
    identical calls produce bitwise-identical assignments — replicate
    ledgers must not depend on dict ordering or scan direction."""
    sub = erdos_renyi(15, p=0.25, seed=13)
    cm = CostModel.paper_default(load=QuadraticLoad())
    server_list = sorted(servers)
    req = np.asarray(requests, dtype=np.int64)

    first = route_requests(
        sub, server_list, req, cm, RoutingStrategy.LOAD_AWARE
    )
    second = route_requests(
        sub, server_list, req, cm, RoutingStrategy.LOAD_AWARE
    )
    np.testing.assert_array_equal(first.assignment, second.assignment)
    np.testing.assert_array_equal(first.counts, second.counts)
    assert first.latency_cost == second.latency_cost
    assert first.load_cost == second.load_cost

    # Replay the greedy loop: each chosen server must minimise the marginal
    # cost at its step, and every lower-indexed server must be strictly
    # worse (proving the first-index tie-break).
    strengths = sub.strengths[server_list]
    distances = sub.distances[np.ix_(server_list, req)]
    counts = np.zeros(len(server_list), dtype=np.int64)
    current = cm.load(strengths, counts)
    for i, choice in enumerate(first.assignment):
        bumped = cm.load(strengths, counts + 1)
        marginal = distances[:, i] + (bumped - current)
        assert marginal[choice] == marginal.min()
        assert (marginal[:choice] > marginal[choice]).all()
        counts[choice] += 1
        current[choice] = bumped[choice]
