"""Tests for the work function algorithm (repro.algorithms.workfunction)."""

import numpy as np
import pytest

from repro.algorithms.opt import Opt
from repro.algorithms.workfunction import WorkFunctionPolicy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi, line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestSetup:
    def test_starts_at_center(self, line5, costs, rng):
        policy = WorkFunctionPolicy(max_servers=2)
        assert policy.reset(line5, costs, rng) == Configuration.single(line5.center)

    def test_space_size(self, line5, costs, rng):
        policy = WorkFunctionPolicy(max_servers=2)
        policy.reset(line5, costs, rng)
        assert policy.n_configurations == 15

    def test_budget_guard(self, costs, rng):
        sub = erdos_renyi(300, seed=0)
        with pytest.raises(ValueError, match="budget"):
            WorkFunctionPolicy(max_servers=3).reset(sub, costs, rng)

    def test_initial_work_function_is_distance_from_start(self, line5, costs, rng):
        policy = WorkFunctionPolicy(max_servers=1)
        policy.reset(line5, costs, rng)
        w = policy.work_function
        # moving the single server from the center anywhere costs β
        assert w[line5.center] == 0.0
        assert all(
            v == pytest.approx(min(costs.migration, costs.creation))
            for i, v in enumerate(w)
            if i != line5.center
        )


class TestBehaviour:
    def test_runs_through_simulator(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 50, seed=0)
        result = simulate(
            line5_latency, WorkFunctionPolicy(max_servers=2), trace, costs
        )
        assert result.rounds == 50
        assert (result.n_active >= 1).all()

    def test_chases_persistent_remote_demand(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=5, creation=50, run_active=0.5, run_inactive=0.5)
        trace = trace_of(*[[4, 4]] * 40)
        result = simulate(sub, WorkFunctionPolicy(max_servers=1), trace, cm)
        assert result.total_migrations >= 1
        assert result.latency_cost[-1] == 0.0

    def test_ignores_transient_noise(self):
        """One odd round must not trigger a move (the work function damps it)."""
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=100, creation=400, run_active=0.5, run_inactive=0.5)
        rounds = [[2]] * 20 + [[0]] + [[2]] * 20
        result = simulate(
            sub, WorkFunctionPolicy(max_servers=1), trace_of(*rounds), cm
        )
        assert result.total_migrations == 0

    def test_opt_lower_bounds_wfa(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 60, seed=2)
        wfa = simulate(
            line5_latency, WorkFunctionPolicy(max_servers=3), trace, costs
        )
        opt_cost, _ = Opt.solve(line5_latency, trace, costs)
        assert opt_cost <= wfa.total_cost + 1e-9

    def test_work_function_is_monotone_nondecreasing(self, line5_latency, costs):
        """w_t(γ) ≥ w_{t-1}(γ) pointwise (serving more rounds costs more)."""
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 20, seed=3)
        policy = WorkFunctionPolicy(max_servers=2)
        rng = np.random.default_rng(0)
        policy.reset(line5_latency, costs, rng)
        previous = policy.work_function
        from repro.core.routing import route_requests

        config = policy.configuration
        for t, requests in enumerate(trace):
            routed = route_requests(
                line5_latency, np.asarray(config.active), requests, costs
            )
            config = policy.decide(t, requests, routed)
            current = policy.work_function
            assert (current >= previous - 1e-9).all()
            previous = current

    def test_deterministic(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 40, seed=4)
        a = simulate(line5_latency, WorkFunctionPolicy(max_servers=2), trace, costs)
        b = simulate(line5_latency, WorkFunctionPolicy(max_servers=2), trace, costs)
        np.testing.assert_allclose(a.per_round_total, b.per_round_total)
