"""Tests for the topology generators, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.generators import (
    erdos_renyi,
    grid,
    line,
    random_bandwidth,
    random_latencies,
    random_tree,
    ring,
    star,
)
from repro.topology.substrate import T1_MBPS, T2_MBPS


class TestErdosRenyi:
    def test_connected_even_when_sparse(self):
        sub = erdos_renyi(60, p=0.01, seed=0)
        assert np.isfinite(sub.distances).all()

    def test_deterministic_given_seed(self):
        a = erdos_renyi(40, p=0.1, seed=5)
        b = erdos_renyi(40, p=0.1, seed=5)
        assert a.links == b.links

    def test_different_seeds_differ(self):
        a = erdos_renyi(40, p=0.1, seed=1)
        b = erdos_renyi(40, p=0.1, seed=2)
        assert a.links != b.links

    def test_p_zero_yields_spanning_chain(self):
        sub = erdos_renyi(10, p=0.0, seed=0)
        assert sub.n_links == 9  # exactly the repair edges

    def test_p_one_yields_complete_graph(self):
        sub = erdos_renyi(8, p=1.0, seed=0)
        assert sub.n_links == 8 * 7 // 2

    def test_bandwidths_are_t1_or_t2(self):
        sub = erdos_renyi(30, p=0.2, seed=3)
        for link in sub.links:
            assert link.bandwidth in (T1_MBPS, T2_MBPS)

    def test_unit_latency_flag(self):
        sub = erdos_renyi(20, p=0.3, seed=1, unit_latency=True)
        assert all(link.latency == 1.0 for link in sub.links)

    def test_latency_range_respected(self):
        sub = erdos_renyi(20, p=0.3, seed=1, latency_range=(2.0, 3.0))
        assert all(2.0 <= link.latency <= 3.0 for link in sub.links)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="p"):
            erdos_renyi(10, p=1.5)

    def test_default_name(self):
        assert "erdos-renyi" in erdos_renyi(5, seed=0).name

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 40), p=st.floats(0.0, 0.5), seed=st.integers(0, 99))
    def test_always_connected_property(self, n, p, seed):
        sub = erdos_renyi(n, p=p, seed=seed)
        assert np.isfinite(sub.distances).all()


class TestLine:
    def test_structure(self):
        sub = line(5, seed=0)
        assert sub.n_links == 4
        assert sub.distance(0, 4) == 4.0

    def test_unit_latency_default(self):
        assert all(link.latency == 1.0 for link in line(4, seed=0).links)

    def test_single_node(self):
        assert line(1, seed=0).n == 1

    def test_random_latencies_option(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(5, 20))
        assert all(5 <= link.latency <= 20 for link in sub.links)


class TestRing:
    def test_structure(self):
        sub = ring(6, seed=0)
        assert sub.n_links == 6
        assert sub.distance(0, 3) == 3.0  # half-way around
        assert sub.distance(0, 5) == 1.0  # wrap-around edge

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="n >= 3"):
            ring(2)


class TestStar:
    def test_structure(self):
        sub = star(6, seed=0)
        assert sub.n_links == 5
        assert sub.degree(0) == 5
        assert sub.distance(1, 5) == 2.0

    def test_center_is_hub(self):
        assert star(7, seed=0).center == 0

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="n >= 2"):
            star(1)


class TestGrid:
    def test_structure(self):
        sub = grid(3, 4, seed=0)
        assert sub.n == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
        assert sub.n_links == 17
        assert sub.distance(0, 11) == 5.0  # manhattan distance

    def test_single_cell(self):
        assert grid(1, 1, seed=0).n == 1

    def test_row_vector(self):
        sub = grid(1, 5, seed=0)
        assert sub.n_links == 4


class TestRandomTree:
    def test_edge_count(self):
        sub = random_tree(20, seed=0)
        assert sub.n_links == 19

    def test_deterministic(self):
        assert random_tree(15, seed=4).links == random_tree(15, seed=4).links

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 50), seed=st.integers(0, 50))
    def test_always_a_connected_tree(self, n, seed):
        sub = random_tree(n, seed=seed)
        assert sub.n_links == n - 1
        assert np.isfinite(sub.distances).all()


class TestRandomDraws:
    def test_bandwidth_values(self, rng):
        draws = random_bandwidth(rng, 200)
        assert set(np.unique(draws)) <= {T1_MBPS, T2_MBPS}
        assert len(set(np.unique(draws))) == 2  # both appear in 200 draws

    def test_latency_bounds(self, rng):
        draws = random_latencies(rng, 100, (3.0, 4.0))
        assert draws.min() >= 3.0 and draws.max() <= 4.0

    def test_latency_rejects_inverted_range(self, rng):
        with pytest.raises(ValueError, match="lo <= hi"):
            random_latencies(rng, 10, (5.0, 2.0))
