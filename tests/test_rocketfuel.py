"""Tests for the Rocketfuel parser and the synthetic AS-7018 topology."""

import numpy as np
import pytest

from repro.topology.rocketfuel import (
    ATT_POPS,
    att_like_topology,
    load_rocketfuel,
    parse_rocketfuel_edges,
)
from repro.topology.substrate import T1_MBPS, T2_MBPS


class TestParser:
    def test_basic_parse(self):
        text = "a b 3.5\nb c 1.0\n"
        assert parse_rocketfuel_edges(text) == [("a", "b", 3.5), ("b", "c", 1.0)]

    def test_skips_comments_and_blanks(self):
        text = "# header\n\na b 1\n   \n# tail\n"
        assert parse_rocketfuel_edges(text) == [("a", "b", 1.0)]

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_rocketfuel_edges("a b\n")

    def test_rejects_non_numeric_latency(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_rocketfuel_edges("a b xyz\n")

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError, match="> 0"):
            parse_rocketfuel_edges("a b 0\n")

    def test_city_state_tokens(self):
        text = "New+York,NY Chicago,IL 17.2\n"
        triples = parse_rocketfuel_edges(text)
        assert triples[0][0] == "New+York,NY"


class TestLoadRocketfuel:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "weights.intra"
        path.write_text("ny chi 17\nchi dal 20\nny dal 35\n# done\n")
        sub = load_rocketfuel(path, seed=0)
        assert sub.n == 3
        assert sub.n_links == 3
        # ny->dal direct (35) equals the 2-hop path (37) minus... direct wins
        assert sub.distance(0, 2) == 35.0

    def test_parallel_edges_keep_minimum(self, tmp_path):
        path = tmp_path / "w.intra"
        path.write_text("a b 9\nb a 4\n")
        sub = load_rocketfuel(path, seed=0)
        assert sub.n_links == 1
        assert sub.links[0].latency == 4.0

    def test_self_edges_dropped(self, tmp_path):
        path = tmp_path / "w.intra"
        path.write_text("a a 3\na b 2\n")
        sub = load_rocketfuel(path, seed=0)
        assert sub.n == 2 and sub.n_links == 1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "w.intra"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no edges"):
            load_rocketfuel(path)

    def test_bandwidths_assigned(self, tmp_path):
        path = tmp_path / "w.intra"
        path.write_text("a b 1\nb c 2\nc d 3\n")
        sub = load_rocketfuel(path, seed=1)
        assert all(l.bandwidth in (T1_MBPS, T2_MBPS) for l in sub.links)


class TestAttLikeTopology:
    def test_scale_matches_published_as7018(self):
        sub = att_like_topology()
        assert 100 <= sub.n <= 130  # published backbone map is ~115 nodes
        assert sub.n_links >= sub.n  # more links than a tree

    def test_connected_with_finite_latencies(self):
        sub = att_like_topology()
        assert np.isfinite(sub.distances).all()

    def test_access_points_are_access_routers_only(self):
        sub = att_like_topology()
        n_pops = len(ATT_POPS)
        assert sub.access_points.min() >= n_pops
        expected = sum(count for *_rest, count in ATT_POPS)
        assert sub.access_points.size == expected

    def test_backbone_only_variant(self):
        sub = att_like_topology(access_routers=False)
        assert sub.n == len(ATT_POPS)
        assert sub.access_points.size == sub.n

    def test_deterministic(self):
        assert att_like_topology().links == att_like_topology().links

    def test_coast_to_coast_latency_plausible(self):
        """NY <-> LA great-circle is ~3900 km -> >= ~20 ms one-way."""
        sub = att_like_topology(access_routers=False)
        ny, la = 0, 3  # indices in ATT_POPS
        assert 15.0 <= sub.distance(ny, la) <= 40.0

    def test_intra_pop_hop_is_short(self):
        sub = att_like_topology()
        access = int(sub.access_points[0])
        # every access router is 0.5 ms from its PoP backbone router
        pop = int(sub.neighbors(access)[0])
        assert sub.distance(access, pop) == pytest.approx(0.5)

    def test_latency_spread_is_heterogeneous(self):
        sub = att_like_topology(access_routers=False)
        lats = [l.latency for l in sub.links]
        assert max(lats) / min(lats) > 5.0
