"""Tests for the SQLite task broker (repro.queue.broker)."""

import threading
import time

import pytest

from repro.queue.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Heartbeat,
    default_worker_id,
)


@pytest.fixture()
def broker(tmp_path):
    return Broker(tmp_path / "queue.db", ttl=30.0)


def enqueue_points(broker, job="job-1", count=3):
    return broker.enqueue_job(
        job, "sweep", spec={"figure": "t"},
        tasks=[("point", {"point": i}) for i in range(count)],
    )


class TestConstruction:
    def test_rejects_directory_path(self, tmp_path):
        with pytest.raises(ValueError, match="directory"):
            Broker(tmp_path)

    def test_rejects_bad_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            Broker(tmp_path / "q.db", ttl=0)

    def test_creates_parent_directories(self, tmp_path):
        Broker(tmp_path / "deep" / "nested" / "q.db")
        assert (tmp_path / "deep" / "nested" / "q.db").exists()

    def test_default_worker_id_mentions_pid(self):
        import os

        assert str(os.getpid()) in default_worker_id()


class TestJobs:
    def test_enqueue_reports_pending_tasks(self, broker):
        state = enqueue_points(broker, count=3)
        assert state["created"] is True
        assert state["status"] == "pending"
        assert state["tasks"] == {"pending": 3}

    def test_enqueue_is_idempotent_on_job_id(self, broker):
        enqueue_points(broker, count=3)
        again = enqueue_points(broker, count=3)
        assert again["created"] is False
        assert again["tasks"] == {"pending": 3}  # not 6

    def test_job_state_unknown_job_is_none(self, broker):
        assert broker.job_state("nope") is None

    def test_delete_job_cascades_to_tasks(self, broker):
        enqueue_points(broker, count=2)
        assert broker.delete_job("job-1") is True
        assert broker.job_state("job-1") is None
        assert broker.stats()["tasks"] == {}

    def test_spec_round_trips(self, broker):
        enqueue_points(broker)
        assert broker.job_state("job-1")["spec"] == {"figure": "t"}

    def test_jobs_listing(self, broker):
        enqueue_points(broker, job="a")
        enqueue_points(broker, job="b")
        assert {state["job"] for state in broker.jobs()} == {"a", "b"}


class TestLeasing:
    def test_lease_serves_oldest_pending_first(self, broker):
        enqueue_points(broker, count=3)
        lease = broker.lease_task("w1")
        assert lease.payload == {"point": 0}
        assert lease.job == "job-1"
        assert lease.job_kind == "sweep"
        assert lease.attempts == 1

    def test_leased_task_is_not_served_twice(self, broker):
        enqueue_points(broker, count=1)
        assert broker.lease_task("w1") is not None
        assert broker.lease_task("w2") is None

    def test_empty_queue_leases_none(self, broker):
        assert broker.lease_task("w1") is None

    def test_complete_marks_done(self, broker):
        enqueue_points(broker, count=1)
        lease = broker.lease_task("w1")
        assert broker.complete(lease) is True
        assert broker.job_state("job-1")["tasks"] == {"done": 1}

    def test_result_blob_round_trips(self, broker):
        broker.enqueue_job("j", "block", tasks=[("block", {}, b"payload")])
        lease = broker.lease_task("w1")
        assert lease.blob == b"payload"
        broker.complete(lease, b"result-bytes")
        assert broker.tasks_for("j")[0]["result"] == b"result-bytes"

    def test_kind_filter(self, broker):
        broker.enqueue_job("j", "sweep", tasks=[("point", {"point": 0})])
        assert broker.lease_task("w", kinds=("block",)) is None
        assert broker.lease_task("w", kinds=("point",)) is not None

    def test_job_filter(self, broker):
        enqueue_points(broker, job="a", count=1)
        enqueue_points(broker, job="b", count=1)
        lease = broker.lease_task("w", job="b")
        assert lease.job == "b"


class TestExpiry:
    def test_expired_lease_is_reserved_with_attempt_count(self, broker):
        enqueue_points(broker, count=1)
        first = broker.lease_task("w1", ttl=0.05)
        time.sleep(0.1)
        second = broker.lease_task("w2")
        assert second is not None
        assert second.task_id == first.task_id
        assert second.attempts == 2
        assert second.token != first.token

    def test_heartbeat_keeps_lease_alive(self, broker):
        enqueue_points(broker, count=1)
        lease = broker.lease_task("w1", ttl=0.2)
        for _ in range(4):
            time.sleep(0.1)
            assert broker.heartbeat(lease) is True
        assert broker.lease_task("w2") is None  # never expired

    def test_heartbeat_after_reap_is_false(self, broker):
        enqueue_points(broker, count=1)
        lease = broker.lease_task("w1", ttl=0.05)
        time.sleep(0.1)
        broker.lease_task("w2")  # reaps + re-serves
        assert broker.heartbeat(lease) is False

    def test_stale_complete_is_false_and_harmless(self, broker):
        enqueue_points(broker, count=1)
        stale = broker.lease_task("w1", ttl=0.05)
        time.sleep(0.1)
        fresh = broker.lease_task("w2")
        assert broker.complete(stale) is False
        # the fresh owner still completes normally
        assert broker.complete(fresh) is True

    def test_task_fails_after_max_attempts(self, tmp_path):
        broker = Broker(tmp_path / "q.db", max_attempts=2)
        broker.enqueue_job("j", "sweep", tasks=[("point", {"point": 0})])
        for _ in range(2):
            lease = broker.lease_task("w", ttl=0.05)
            assert lease is not None
            time.sleep(0.1)
        broker.release_expired()
        assert broker.lease_task("w") is None
        state = broker.job_state("j")
        assert state["tasks"] == {"failed": 1}

    def test_fail_reserves_until_attempts_run_out(self, tmp_path):
        broker = Broker(tmp_path / "q.db", max_attempts=2)
        broker.enqueue_job("j", "sweep", tasks=[("point", {"point": 0})])
        lease = broker.lease_task("w")
        assert broker.fail(lease, "boom") is True
        assert broker.job_state("j")["tasks"] == {"pending": 1}
        lease = broker.lease_task("w")
        broker.fail(lease, "boom again")
        assert broker.job_state("j")["tasks"] == {"failed": 1}
        assert "boom again" in broker.tasks_for("j")[0]["error"]


class TestAddTask:
    def test_add_task_dedupes_outstanding_payloads(self, broker):
        enqueue_points(broker, count=1)
        assert broker.add_task("job-1", "topup", {"point": 0}) is True
        assert broker.add_task("job-1", "topup", {"point": 0}) is False
        assert broker.job_state("job-1")["tasks"] == {"pending": 2}

    def test_add_task_allows_revisiting_done_payloads(self, broker):
        enqueue_points(broker, count=1)
        lease = broker.lease_task("w")
        broker.complete(lease)
        assert broker.add_task("job-1", "point", {"point": 0}) is True

    def test_add_task_reopens_finished_job(self, broker):
        enqueue_points(broker, count=1)
        broker.complete(broker.lease_task("w"))
        assert broker.claim_finalize("job-1")
        broker.finish_job("job-1", "done")
        broker.add_task("job-1", "topup", {"point": 0})
        assert broker.job_state("job-1")["status"] == "pending"


class TestFinalize:
    def test_claim_requires_drained_job(self, broker):
        enqueue_points(broker, count=2)
        assert broker.claim_finalize("job-1") is False  # pending tasks
        first = broker.lease_task("w")
        broker.complete(first)
        assert broker.claim_finalize("job-1") is False  # one still pending
        broker.complete(broker.lease_task("w"))
        assert broker.claim_finalize("job-1") is True

    def test_claim_has_a_single_winner(self, broker):
        enqueue_points(broker, count=1)
        broker.complete(broker.lease_task("w"))
        assert broker.claim_finalize("job-1") is True
        assert broker.claim_finalize("job-1") is False

    def test_finish_job_done(self, broker):
        enqueue_points(broker, count=1)
        broker.complete(broker.lease_task("w"))
        broker.claim_finalize("job-1")
        broker.finish_job("job-1", "done")
        assert broker.job_state("job-1")["status"] == "done"

    def test_finish_job_rejects_unknown_status(self, broker):
        with pytest.raises(ValueError, match="unknown job status"):
            broker.finish_job("job-1", "bogus")

    def test_finalizable_jobs_lists_drained_unassembled(self, broker):
        enqueue_points(broker, job="a", count=1)
        enqueue_points(broker, job="b", count=1)
        broker.complete(broker.lease_task("w", job="a"))
        assert broker.finalizable_jobs() == ["a"]

    def test_stale_assembling_job_is_reaped(self, tmp_path):
        broker = Broker(tmp_path / "q.db", assembly_ttl=0.05)
        enqueue_points(broker, count=1)
        broker.complete(broker.lease_task("w"))
        assert broker.claim_finalize("job-1") is True
        time.sleep(0.1)
        # the assembler died; the job is claimable again
        assert broker.finalizable_jobs() == ["job-1"]
        assert broker.claim_finalize("job-1") is True


class TestPersistenceAndConcurrency:
    def test_state_survives_broker_instances(self, tmp_path):
        path = tmp_path / "q.db"
        enqueue_points(Broker(path), count=2)
        fresh = Broker(path)
        assert fresh.job_state("job-1")["tasks"] == {"pending": 2}
        assert fresh.lease_task("w") is not None

    def test_concurrent_leasing_never_double_serves(self, tmp_path):
        broker_path = tmp_path / "q.db"
        count = 20
        enqueue_points(Broker(broker_path), count=count)
        seen: "list[int]" = []
        lock = threading.Lock()

        def drain(name):
            own = Broker(broker_path)
            while True:
                lease = own.lease_task(name)
                if lease is None:
                    return
                with lock:
                    seen.append(lease.task_id)
                own.complete(lease)

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(seen) == sorted(set(seen))  # no double-serves
        assert len(seen) == count

    def test_heartbeat_thread_extends_until_exit(self, broker):
        enqueue_points(broker, count=1)
        lease = broker.lease_task("w", ttl=0.3)
        with Heartbeat(broker, lease):
            time.sleep(0.8)
            assert broker.lease_task("other") is None  # still held
        assert broker.complete(lease) is True

    def test_default_max_attempts_sane(self):
        assert DEFAULT_MAX_ATTEMPTS >= 2
