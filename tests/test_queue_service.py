"""Tests for the what-if results service (repro.queue.service)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.cache import ResultCache
from repro.api.experiment import run_sweep
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.queue.broker import Broker
from repro.queue.service import ResultsServer
from repro.queue.worker import worker_loop


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5),
        runs=2,
        seed=1,
        figure="t",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


@pytest.fixture()
def server(tmp_path):
    instance = ResultsServer(
        ("127.0.0.1", 0), tmp_path / "queue.db", tmp_path / "cache"
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


def request(server, path, body=None):
    """(status, decoded JSON) for one request; POST when a body is given."""
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        server.url + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        assert request(server, "/healthz") == (200, {"ok": True})

    def test_unknown_get_is_404(self, server):
        status, payload = request(server, "/nope")
        assert status == 404
        assert "nope" in payload["error"]

    def test_unknown_post_is_404(self, server):
        status, payload = request(server, "/jobs", body={})
        assert status == 404

    def test_unknown_job_is_404(self, server):
        status, payload = request(server, "/jobs/does-not-exist")
        assert status == 404
        assert "does-not-exist" in payload["error"]

    def test_malformed_spec_is_400(self, server):
        status, payload = request(server, "/sweep", body={"figure": 42})
        assert status == 400
        assert "malformed sweep spec" in payload["error"]

    def test_stats_cover_broker_and_cache(self, server):
        status, payload = request(server, "/stats")
        assert status == 200
        assert payload["jobs"] == {}
        assert "cache" in payload


class TestSweepLifecycle:
    def test_cold_post_enqueues_and_accepts(self, server):
        spec = small_sweep()
        status, payload = request(server, "/sweep", body=spec.to_dict())
        assert status == 202
        assert payload["status"] == "pending"
        assert payload["cached"] is False
        assert payload["tasks"] == {"pending": 2}
        assert payload["poll"] == f"/jobs/{payload['job']}"
        # the job is visible and resubmission does not double the tasks
        status, state = request(server, payload["poll"])
        assert status == 200
        assert state["tasks"] == {"pending": 2}
        status, again = request(server, "/sweep", body=spec.to_dict())
        assert status == 202
        assert again["tasks"] == {"pending": 2}

    def test_envelope_body_is_accepted(self, server):
        status, payload = request(
            server, "/sweep", body={"sweep": small_sweep().to_dict()}
        )
        assert status == 202

    def test_warm_post_answers_from_cache_with_no_tasks(self, server):
        spec = small_sweep()
        serial = run_sweep(spec, cache=server.cache())
        status, payload = request(server, "/sweep", body=spec.to_dict())
        assert status == 200
        assert payload["cached"] is True
        assert payload["status"] == "done"
        assert payload["result"] == serial.to_dict()
        # acceptance property: nothing was enqueued anywhere
        assert server.broker.stats()["jobs"] == {}
        assert server.broker.stats()["tasks"] == {}

    def test_poll_to_done_attaches_result(self, server):
        spec = small_sweep()
        serial = run_sweep(spec)
        _, accepted = request(server, "/sweep", body=spec.to_dict())
        worker_loop(
            Broker(server.broker.path),
            server.cache(),
            poll=0.02,
            idle_exit=0.2,
        )
        status, state = request(server, accepted["poll"])
        assert status == 200
        assert state["status"] == "done"
        assert state["result"] == serial.to_dict()
        # job listing shows it too
        status, listing = request(server, "/jobs")
        assert [job["job"] for job in listing["jobs"]] == [accepted["job"]]

    def test_in_process_workers_complete_jobs(self, tmp_path):
        spec = small_sweep()
        serial = run_sweep(spec)
        instance = ResultsServer(
            ("127.0.0.1", 0), tmp_path / "queue.db", tmp_path / "cache"
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        instance.start_workers(2, poll=0.02)
        try:
            _, accepted = request(instance, "/sweep", body=spec.to_dict())
            deadline = threading.Event()
            for _ in range(200):  # up to ~20s
                status, state = request(instance, accepted["poll"])
                if state["status"] in ("done", "failed"):
                    break
                deadline.wait(0.1)
            assert state["status"] == "done"
            assert state["result"] == serial.to_dict()
        finally:
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)

    def test_restart_loses_nothing(self, tmp_path):
        """Kill the server; queue file + cache dir carry the state."""
        spec = small_sweep()
        first = ResultsServer(
            ("127.0.0.1", 0), tmp_path / "queue.db", tmp_path / "cache"
        )
        thread = threading.Thread(target=first.serve_forever, daemon=True)
        thread.start()
        _, accepted = request(first, "/sweep", body=spec.to_dict())
        first.shutdown()
        first.server_close()
        thread.join(timeout=5)

        second = ResultsServer(
            ("127.0.0.1", 0), tmp_path / "queue.db", tmp_path / "cache"
        )
        thread = threading.Thread(target=second.serve_forever, daemon=True)
        thread.start()
        try:
            status, state = request(second, accepted["poll"])
            assert status == 200
            assert state["tasks"] == {"pending": 2}
        finally:
            second.shutdown()
            second.server_close()
            thread.join(timeout=5)
