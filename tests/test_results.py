"""Tests for the run ledger and result aggregation (repro.core.results)."""

import numpy as np
import pytest

from repro.core.results import CostBreakdown, RoundRecord, RunLedger


def make_record(t, **overrides):
    defaults = dict(
        t=t,
        latency_cost=2.0,
        load_cost=1.0,
        running_cost=2.5,
        migration_cost=0.0,
        creation_cost=0.0,
        migrations=0,
        creations=0,
        n_active=1,
        n_inactive=0,
        n_requests=3,
    )
    defaults.update(overrides)
    return RoundRecord(**defaults)


class TestRoundRecord:
    def test_access_cost(self):
        rec = make_record(0, latency_cost=3.0, load_cost=2.0)
        assert rec.access_cost == 5.0

    def test_total_cost(self):
        rec = make_record(
            0, latency_cost=1, load_cost=2, running_cost=3,
            migration_cost=4, creation_cost=5,
        )
        assert rec.total_cost == 15.0


class TestCostBreakdown:
    def test_total(self):
        bd = CostBreakdown(access=1, running=2, migration=3, creation=4)
        assert bd.total == 10

    def test_add(self):
        a = CostBreakdown(1, 2, 3, 4)
        b = CostBreakdown(10, 20, 30, 40)
        s = a + b
        assert (s.access, s.running, s.migration, s.creation) == (11, 22, 33, 44)

    def test_scaled(self):
        bd = CostBreakdown(2, 4, 6, 8).scaled(0.5)
        assert (bd.access, bd.running, bd.migration, bd.creation) == (1, 2, 3, 4)


class TestRunLedger:
    def build(self, n=5):
        ledger = RunLedger()
        for t in range(n):
            ledger.append(
                make_record(
                    t,
                    latency_cost=float(t),
                    migration_cost=40.0 if t == 2 else 0.0,
                    migrations=1 if t == 2 else 0,
                    n_active=1 + t % 2,
                )
            )
        return ledger.finish("TEST", "scenario-x")

    def test_metadata(self):
        result = self.build()
        assert result.policy_name == "TEST"
        assert result.scenario_name == "scenario-x"
        assert result.rounds == 5

    def test_series_values(self):
        result = self.build()
        np.testing.assert_allclose(result.latency_cost, [0, 1, 2, 3, 4])
        np.testing.assert_allclose(result.migration_cost, [0, 0, 40, 0, 0])

    def test_total_cost_consistent_with_series(self):
        result = self.build()
        assert result.total_cost == pytest.approx(result.per_round_total.sum())

    def test_breakdown_sums_to_total(self):
        result = self.build()
        assert result.breakdown.total == pytest.approx(result.total_cost)

    def test_access_series(self):
        result = self.build()
        np.testing.assert_allclose(
            result.access_cost, result.latency_cost + result.load_cost
        )

    def test_counters(self):
        result = self.build()
        assert result.total_migrations == 1
        assert result.total_creations == 0
        assert result.peak_active_servers == 2
        assert result.mean_active_servers == pytest.approx(np.mean([1, 2, 1, 2, 1]))

    def test_arrays_read_only(self):
        result = self.build()
        with pytest.raises(ValueError):
            result.latency_cost[0] = 9.0

    def test_record_round_trip(self):
        result = self.build()
        rec = result.record(2)
        assert rec.t == 2
        assert rec.migration_cost == 40.0
        assert rec.migrations == 1

    def test_record_out_of_range(self):
        with pytest.raises(IndexError):
            self.build().record(99)

    def test_empty_ledger(self):
        result = RunLedger().finish("EMPTY")
        assert result.rounds == 0
        assert result.total_cost == 0.0
        assert result.peak_active_servers == 0
        assert result.mean_active_servers == 0.0


class TestCsvExport:
    def build(self):
        ledger = RunLedger()
        for t in range(3):
            ledger.append(make_record(t, latency_cost=float(t), migrations=t % 2))
        return ledger.finish("CSVTEST", "scn")

    def test_rows_match_columns(self):
        result = self.build()
        rows = result.as_rows()
        assert len(rows) == 3
        assert all(len(row) == len(result.CSV_COLUMNS) for row in rows)

    def test_total_column_consistent(self):
        result = self.build()
        for t, row in enumerate(result.as_rows()):
            assert row[-1] == pytest.approx(float(result.per_round_total[t]))

    def test_save_csv_round_trip(self, tmp_path):
        import csv

        result = self.build()
        path = tmp_path / "run.csv"
        result.save_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# policy=CSVTEST scenario=scn")
        reader = csv.reader(lines[1:])
        header = next(reader)
        assert tuple(header) == result.CSV_COLUMNS
        body = list(reader)
        assert len(body) == 3
        assert float(body[2][2]) == 2.0  # latency of round 2
