"""Tests for the execution backends (repro.api.execution).

The load-bearing property: a sweep's result is *bit-identical* no matter
which backend executes it, because every replicate task carries its
pre-spawned SeedSequence child.
"""

import numpy as np
import pytest

from repro.api.execution import (
    ProcessPoolBackend,
    ReplicateTask,
    SerialBackend,
)
from repro.api.experiment import run_sweep
from repro.api.specs import (
    CostSpec,
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.experiments.runner import sweep_experiment


def small_sweep(runs: int = 2) -> SweepSpec:
    return SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"sojourn": 5}),
            policies=(PolicySpec("onth", label="ONTH"),
                      PolicySpec("onbr", label="ONBR")),
            costs=CostSpec.paper_default(),
            horizon=40,
        ),
        parameter="topology.n",
        values=(20, 40),
        runs=runs,
        seed=11,
        figure="figX",
    )


def tasks_for(n: int, seed: int = 0) -> list:
    children = np.random.SeedSequence(seed).spawn(n)
    return [ReplicateTask(x=i, seed=children[i]) for i in range(n)]


class TestSerialBackend:
    def test_runs_in_order_with_child_seeds(self):
        def replicate(x, rng):
            return {"x": float(x), "draw": float(rng.random())}

        results = SerialBackend().run_replicates(replicate, tasks_for(4))
        assert [r["x"] for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert len({r["draw"] for r in results}) == 4


class TestProcessPoolBackend:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBackend(0)

    def test_defaults_to_cpu_count(self):
        assert ProcessPoolBackend().workers >= 1

    def test_single_task_runs_serially(self):
        def replicate(x, rng):
            return {"v": float(x)}

        results = ProcessPoolBackend(4).run_replicates(replicate, tasks_for(1))
        assert results == [{"v": 0.0}]

    def test_matches_serial_for_picklable_replicate(self):
        # SpecReplicate (module-level class) is picklable: the normal path.
        spec = small_sweep()
        serial = run_sweep(spec)
        parallel = run_sweep(spec, backend=ProcessPoolBackend(4))
        assert parallel.series == serial.series
        assert parallel.errors == serial.errors
        assert parallel.x_values == serial.x_values

    def test_matches_serial_for_closure_replicate(self):
        # Closures are not picklable; the backend falls back to fork (or
        # serial where fork is unavailable) — results must be identical.
        offset = 10.0

        def replicate(x, rng):
            return {"y": offset * x + float(rng.random())}

        serial = sweep_experiment("f", "t", "x", [1, 2], replicate,
                                  runs=3, seed=4)
        parallel = sweep_experiment("f", "t", "x", [1, 2], replicate,
                                    runs=3, seed=4,
                                    backend=ProcessPoolBackend(2))
        assert parallel.series == serial.series
        assert parallel.errors == serial.errors


class TestSpecSweepExecution:
    def test_run_sweep_labels_and_shape(self):
        result = run_sweep(small_sweep(runs=1))
        assert result.series_names == ("ONTH", "ONBR")
        assert result.x_values == (20, 40)
        assert all(v > 0 for v in result.y("ONTH"))

    def test_run_sweep_deterministic(self):
        a = run_sweep(small_sweep())
        b = run_sweep(small_sweep())
        assert a.series == b.series

    def test_point_sweep_without_parameter(self):
        spec = SweepSpec(experiment=small_sweep().experiment, runs=2, seed=1)
        result = run_sweep(spec)
        assert result.x_values == ("total cost",)
        assert result.series_names == ("ONTH", "ONBR")


class TestRunExperiment:
    def test_full_ledgers_and_total_costs(self):
        from repro.api.experiment import run_experiment

        spec = small_sweep().experiment
        outcome = run_experiment(spec)
        assert set(outcome.total_costs) == {"ONTH", "ONBR"}
        assert outcome.results["ONTH"].rounds == spec.horizon
        figure = outcome.to_figure_result()
        assert figure.x_values == ("total cost",)

    def test_seeded_reproducibility(self):
        from repro.api.experiment import run_experiment

        spec = small_sweep().experiment
        assert (run_experiment(spec).total_costs
                == run_experiment(spec).total_costs)

    def test_series_label_collision_raises(self):
        # Distinct kinds may build policies with the same .name; that must
        # raise rather than silently overwrite one series with the other.
        from repro.api.experiment import resolve_series_labels, run_experiment

        spec = small_sweep().experiment
        colliding = ExperimentSpec(
            topology=spec.topology,
            scenario=spec.scenario,
            policies=(PolicySpec("onbr"), PolicySpec("onbr-fixed")),
            horizon=10,
        )
        with pytest.raises(ValueError, match="collide on series label"):
            resolve_series_labels(colliding)
        with pytest.raises(ValueError, match="collide on series label"):
            run_experiment(colliding)

    def test_resolve_series_labels(self):
        from repro.api.experiment import resolve_series_labels

        assert resolve_series_labels(small_sweep().experiment) == ("ONTH", "ONBR")
