"""Tests for ONBR (repro.algorithms.onbr)."""

import numpy as np
import pytest

from repro.algorithms.onbr import OnBR
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import line, star
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


def constant_trace(node, rounds, copies=1):
    return trace_of(*[[node] * copies for _ in range(rounds)])


class TestInitialisation:
    def test_starts_at_center(self, line5, costs, rng):
        policy = OnBR()
        cfg = policy.reset(line5, costs, rng)
        assert cfg == Configuration.single(line5.center)

    def test_custom_start_node(self, line5, costs, rng):
        policy = OnBR(start_node=4)
        assert policy.reset(line5, costs, rng) == Configuration.single(4)

    def test_start_node_validated(self, line5, costs, rng):
        with pytest.raises(ValueError, match="start node"):
            OnBR(start_node=99).reset(line5, costs, rng)

    def test_name_reflects_variant(self):
        assert OnBR().name == "ONBR"
        assert OnBR(dynamic_threshold=True).name == "ONBR-dyn"

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="threshold_factor"):
            OnBR(threshold_factor=0)
        with pytest.raises(ValueError, match="cache_size"):
            OnBR(cache_size=0)

    def test_reset_clears_state_for_reuse(self, line5, costs):
        policy = OnBR()
        trace = constant_trace(0, 30, copies=5)
        first = simulate(line5, policy, trace, costs)
        second = simulate(line5, policy, trace, costs)
        np.testing.assert_allclose(first.per_round_total, second.per_round_total)


class TestEpochMechanics:
    def test_no_change_below_threshold(self, line5, costs):
        """Tiny demand never reaches θ = 2c = 800 in a short run."""
        result = simulate(line5, OnBR(), constant_trace(2, 10), costs)
        assert result.total_migrations == 0
        assert result.total_creations == 0
        assert (result.n_active == 1).all()

    def test_migrates_toward_persistent_remote_demand(self):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)
        # all demand at node 8, server starts at center 4: distance 4 hops
        # of latency 10 = 40/round; epoch threshold 2c=400 -> ~9 rounds
        result = simulate(sub, OnBR(), constant_trace(8, 60), cm)
        assert result.total_migrations >= 1
        # once moved, the access cost drops to zero
        assert result.latency_cost[-1] == 0.0

    def test_stable_configuration_under_constant_demand(self, costs):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        result = simulate(sub, OnBR(), constant_trace(8, 120, copies=3), costs)
        # after convergence there are no further migrations/creations
        late_moves = result.migrations[60:].sum() + result.creations[60:].sum()
        assert late_moves == 0

    def test_dynamic_threshold_reacts_faster(self):
        """Short epochs shrink θ, so ONBR-dyn reconfigures at least as often."""
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)
        scenario = CommuterScenario(sub, period=4, sojourn=3, dynamic_load=False)
        trace = generate_trace(scenario, 100, seed=1)
        fixed = simulate(sub, OnBR(), trace, cm)
        dyn = simulate(sub, OnBR(dynamic_threshold=True), trace, cm)
        fixed_changes = fixed.total_migrations + fixed.total_creations
        dyn_changes = dyn.total_migrations + dyn.total_creations
        assert dyn_changes >= fixed_changes

    def test_keeps_at_least_one_active_server(self, line5, costs):
        scenario = CommuterScenario(line5, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 80, seed=0)
        result = simulate(line5, OnBR(), trace, costs)
        assert (result.n_active >= 1).all()

    def test_inactive_queue_bounded(self, costs):
        sub = star(8, seed=0)
        scenario = CommuterScenario(sub, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 100, seed=1)
        result = simulate(sub, OnBR(cache_size=2), trace, costs)
        assert result.n_inactive.max() <= 2


class TestCreationPath:
    def test_creates_second_server_for_split_demand(self):
        """Persistent demand at both ends of a long path justifies 2 servers."""
        sub = line(11, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=10, creation=50, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[0, 0, 10, 10] for _ in range(80)])
        result = simulate(sub, OnBR(), trace, cm)
        assert result.peak_active_servers >= 2
        # both clusters eventually served locally
        assert result.latency_cost[-1] == 0.0

    def test_charges_creation_without_donor(self):
        sub = line(11, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=10, creation=50, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[0, 0, 10, 10] for _ in range(80)])
        result = simulate(sub, OnBR(), trace, cm)
        assert result.creation_cost.sum() > 0
