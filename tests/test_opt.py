"""Tests for the optimal offline dynamic program (repro.algorithms.opt).

The heavyweight checks: OPT's DP value equals its own simulated ledger,
matches exhaustive search over all configuration paths on tiny instances,
and lower-bounds every other policy (online or offline).
"""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.onbr import OnBR
from repro.algorithms.onth import OnTH
from repro.algorithms.opt import Opt, per_round_access_costs
from repro.algorithms.static import StaticPolicy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.routing import route_requests
from repro.core.simulator import simulate
from repro.core.transitions import price_transition
from repro.topology.generators import line, star
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


def brute_force_optimum(substrate, trace, costs, start_node):
    """Exhaustive search over all active-only configuration paths.

    Enumerates every sequence of non-empty active sets (no inactive servers)
    and prices it with the simulator's accounting. OPT searches a *larger*
    space (it may also use inactive servers), so OPT ≤ brute force must hold,
    and with Ri > 0 caching only helps when reuse is possible — on these
    tiny instances we can also assert near-equality when expected.
    """
    n = substrate.n
    states = [
        tuple(sorted(s))
        for size in range(1, n + 1)
        for s in _subsets(range(n), size)
    ]
    best = np.inf
    start = Configuration.single(start_node)
    for path in product(states, repeat=len(trace)):
        cost = 0.0
        prev = start
        for t, active in enumerate(path):
            cfg = Configuration(active)
            cost += route_requests(
                substrate, np.asarray(prev.active), trace[t], costs
            ).access_cost
            cost += price_transition(prev, cfg, costs).cost
            cost += costs.running_cost(cfg)
            prev = cfg
            if cost >= best:
                break
        best = min(best, cost)
    return best


def _subsets(items, size):
    from itertools import combinations

    return combinations(items, size)


class TestDpConsistency:
    def test_dp_value_equals_simulated_ledger(self, line5, costs, commuter_trace_line5):
        opt = Opt()
        result = simulate(line5, opt, commuter_trace_line5, costs)
        assert result.total_cost == pytest.approx(opt.optimal_cost)

    def test_dp_value_equals_ledger_beta_greater_c(
        self, line5, costs_expensive, commuter_trace_line5
    ):
        opt = Opt()
        result = simulate(line5, opt, commuter_trace_line5, costs_expensive)
        assert result.total_cost == pytest.approx(opt.optimal_cost)

    def test_plan_length_matches_trace(self, line5, costs, commuter_trace_line5):
        opt = Opt()
        simulate(line5, opt, commuter_trace_line5, costs)
        assert len(opt.plan) == len(commuter_trace_line5)

    def test_solve_classmethod_matches_policy(self, line5, costs, commuter_trace_line5):
        cost_a, plan_a = Opt.solve(line5, commuter_trace_line5, costs)
        opt = Opt()
        simulate(line5, opt, commuter_trace_line5, costs)
        assert cost_a == pytest.approx(opt.optimal_cost)
        assert plan_a == opt.plan


class TestExhaustiveCrossCheck:
    """OPT vs brute force on instances small enough to enumerate fully."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_nodes_three_rounds(self, seed):
        sub = line(3, seed=0, unit_latency=False, latency_range=(5, 20))
        rng = np.random.default_rng(seed)
        trace = trace_of(*[rng.integers(0, 3, size=3) for _ in range(3)])
        cm = CostModel(migration=10, creation=30, run_active=2, run_inactive=0.5)
        opt_cost, _plan = Opt.solve(sub, trace, cm, start_node=1)
        brute = brute_force_optimum(sub, trace, cm, start_node=1)
        assert opt_cost <= brute + 1e-9
        # with these costs caching is never cheaper than dropping + creating
        # within 3 rounds, so the active-only brute force is attainable
        assert opt_cost == pytest.approx(brute)

    def test_star_with_cheap_migration(self):
        sub = star(4, seed=0)
        trace = trace_of([1], [2], [3], [1])
        cm = CostModel(migration=1, creation=100, run_active=0.1, run_inactive=0.05)
        opt_cost, plan = Opt.solve(sub, trace, cm, start_node=0)
        brute = brute_force_optimum(sub, trace, cm, start_node=0)
        assert opt_cost <= brute + 1e-9


class TestOptimality:
    """OPT lower-bounds every policy on the same instance."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: OnTH(),
            lambda: OnBR(),
            lambda: OnBR(dynamic_threshold=True),
            lambda: StaticPolicy(Configuration((0, 4))),
            lambda: StaticPolicy(Configuration.single(2)),
        ],
    )
    def test_opt_leq_policy(self, line5_latency, costs, policy_factory):
        scenario = CommuterScenario(
            line5_latency, period=4, sojourn=5, dynamic_load=True
        )
        trace = generate_trace(scenario, 40, seed=9)
        policy_cost = simulate(
            line5_latency, policy_factory(), trace, costs, seed=0
        ).total_cost
        opt_cost, _ = Opt.solve(line5_latency, trace, costs)
        assert opt_cost <= policy_cost + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_opt_leq_random_static_policies(self, seed):
        sub = line(4, seed=0, unit_latency=False, latency_range=(5, 20))
        rng = np.random.default_rng(seed)
        trace = trace_of(*[rng.integers(0, 4, size=2) for _ in range(6)])
        cm = CostModel.paper_default()
        node = int(rng.integers(0, 4))
        static_cost = simulate(
            sub, StaticPolicy(Configuration.single(node)), trace, cm
        ).total_cost
        opt_cost, _ = Opt.solve(sub, trace, cm)
        assert opt_cost <= static_cost + 1e-9


class TestConstraints:
    def test_max_servers_respected(self, line5, costs, commuter_trace_line5):
        opt = Opt(max_servers=1)
        simulate(line5, opt, commuter_trace_line5, costs)
        assert all(cfg.n_servers <= 1 for cfg in opt.plan)

    def test_max_servers_increases_cost(self, line5_latency, costs):
        scenario = CommuterScenario(
            line5_latency, period=4, sojourn=3, dynamic_load=True
        )
        trace = generate_trace(scenario, 30, seed=2)
        unconstrained, _ = Opt.solve(line5_latency, trace, costs)
        constrained, _ = Opt.solve(line5_latency, trace, costs, max_servers=1)
        assert unconstrained <= constrained + 1e-9

    def test_state_space_guard(self):
        sub = line(12, seed=0)
        opt = Opt(max_states=100)
        opt.prepare(trace_of([0]))
        with pytest.raises(ValueError, match="state space"):
            simulate(sub, opt, trace_of([0]), CostModel.paper_default())

    def test_active_only_mode(self, line5, costs, commuter_trace_line5):
        full = Opt()
        restricted = Opt(allow_inactive=False)
        simulate(line5, full, commuter_trace_line5, costs)
        simulate(line5, restricted, commuter_trace_line5, costs)
        assert full.optimal_cost <= restricted.optimal_cost + 1e-9
        assert all(cfg.n_inactive == 0 for cfg in restricted.plan)

    def test_requires_prepare(self, line5, costs, rng):
        with pytest.raises(RuntimeError, match="prepare"):
            Opt().reset(line5, costs, rng)

    def test_migration_matrix_unsupported(self, line5, commuter_trace_line5, rng):
        cm = CostModel(migration_matrix=np.ones((5, 5)) - np.eye(5))
        opt = Opt()
        opt.prepare(commuter_trace_line5)
        with pytest.raises(NotImplementedError):
            opt.reset(line5, cm, rng)

    def test_unsolved_access_raises(self):
        opt = Opt()
        with pytest.raises(RuntimeError, match="not been solved"):
            opt.optimal_cost
        with pytest.raises(RuntimeError, match="not been solved"):
            opt.plan


class TestPerRoundAccessCosts:
    def test_matches_routing(self, line5, costs, commuter_trace_line5):
        active = np.asarray([1, 3])
        vector = per_round_access_costs(line5, costs, commuter_trace_line5, active)
        for t, requests in enumerate(commuter_trace_line5):
            expected = route_requests(line5, active, requests, costs).access_cost
            assert vector[t] == pytest.approx(expected)

    def test_empty_active_set_is_infeasible(self, line5, costs, tiny_trace):
        vector = per_round_access_costs(
            line5, costs, tiny_trace, np.zeros(0, dtype=np.int64)
        )
        sizes = tiny_trace.requests_per_round()
        assert np.isinf(vector[sizes > 0]).all()
        assert (vector[sizes == 0] == 0).all()


class TestPlanQuality:
    def test_tracks_moving_hotspot_when_cheap(self):
        """With tiny β, OPT follows the demand around the line."""
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=1, creation=5, run_active=0.1, run_inactive=0.1)
        rounds = [[0]] * 5 + [[4]] * 5
        trace = trace_of(*rounds)
        cost, plan = Opt.solve(sub, trace, cm, start_node=0)
        assert plan[0].active == (0,)
        # the configuration serving the final round is plan[-2]
        assert plan[-2].hosts_active(4)

    def test_stays_put_when_migration_dear(self):
        sub = line(5, seed=0)
        cm = CostModel(migration=1000, creation=2000, run_active=0.1, run_inactive=0.1)
        trace = trace_of([2], [3], [2], [1], [2])
        cost, plan = Opt.solve(sub, trace, cm, start_node=2)
        assert all(cfg.active == (2,) for cfg in plan)
