"""Tests for the queue CLI surface: enqueue / worker / serve + error paths.

Every bad invocation must exit 2 with a one-line stderr hint — the same
contract the figure and run commands follow — and the enqueue → worker →
re-enqueue round trip must end on a warm cache hit.
"""

import json

import pytest

from repro.experiments.__main__ import (
    _SUBCOMMANDS,
    build_enqueue_parser,
    build_serve_parser,
    build_worker_parser,
    main,
)

RUN_ARGS = [
    "run", "--policy", "onth", "--topology", "erdos_renyi:n=30",
    "--horizon", "30", "--runs", "1",
    "--sweep", "scenario.sojourn=2,5",
]

ENQUEUE_ARGS = [
    "enqueue", "--policy", "onth", "--topology", "erdos_renyi:n=30",
    "--horizon", "30", "--runs", "1",
    "--sweep", "scenario.sojourn=2,5",
]


def one_line(err: str) -> str:
    """Assert stderr is exactly one line and return it."""
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, err
    return lines[0]


class TestErrorPaths:
    def test_subcommand_registry_is_complete(self):
        assert set(_SUBCOMMANDS) == {
            "run", "list", "cache", "trace", "enqueue", "worker", "serve",
            "report",
        }

    def test_unknown_subcommand_names_the_alternatives(self, capsys):
        assert main(["serveq"]) == 2
        hint = one_line(capsys.readouterr().err)
        assert "cache, enqueue, list, report, run, serve, trace, worker" in hint

    def test_zero_runs_is_a_flag_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*RUN_ARGS[:-2], "--runs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_queue_path_must_not_be_a_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*RUN_ARGS, "--queue", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_queue_path_must_not_be_empty(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*RUN_ARGS, "--queue", "  "])
        assert excinfo.value.code == 2
        assert "must not be empty" in capsys.readouterr().err

    def test_queue_and_workers_conflict(self, tmp_path, capsys):
        code = main([
            *RUN_ARGS, "--queue", str(tmp_path / "q.db"), "--workers", "2",
        ])
        assert code == 2
        hint = one_line(capsys.readouterr().err)
        assert hint.startswith("error:")
        assert "mutually exclusive" in hint

    def test_enqueue_rejects_unknown_policy(self, tmp_path, capsys):
        code = main([
            "enqueue", "--policy", "nope",
            "--queue", str(tmp_path / "q.db"),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 2
        assert one_line(capsys.readouterr().err).startswith("error:")

    def test_worker_rejects_nonpositive_ttl(self, tmp_path, capsys):
        code = main([
            "worker", "--queue", str(tmp_path / "q.db"),
            "--cache-dir", str(tmp_path / "cache"), "--ttl", "0",
        ])
        assert code == 2
        assert "--ttl must be > 0" in one_line(capsys.readouterr().err)

    def test_queue_flags_are_required(self, tmp_path, capsys):
        for argv in (
            ["worker", "--cache-dir", str(tmp_path)],
            ["enqueue", "--queue", str(tmp_path / "q.db")],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            capsys.readouterr()

    def test_unopenable_queue_file_is_exit_2(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.db"
        garbage.write_bytes(b"this is not a sqlite database" * 10)
        code = main([
            "worker", "--queue", str(garbage),
            "--cache-dir", str(tmp_path / "cache"), "--idle-exit", "0.1",
        ])
        assert code == 2
        assert "cannot open queue" in one_line(capsys.readouterr().err)


class TestParsers:
    def test_enqueue_defaults(self, tmp_path):
        args = build_enqueue_parser().parse_args([
            "--policy", "onth",
            "--queue", str(tmp_path / "q.db"), "--cache-dir", str(tmp_path),
        ])
        assert args.requeue is False
        assert args.wait is False
        assert args.poll == 0.5

    def test_worker_defaults(self, tmp_path):
        args = build_worker_parser().parse_args([
            "--queue", str(tmp_path / "q.db"), "--cache-dir", str(tmp_path),
        ])
        assert args.ttl is None
        assert args.max_tasks is None
        assert args.idle_exit is None

    def test_serve_defaults(self, tmp_path):
        args = build_serve_parser().parse_args([
            "--queue", str(tmp_path / "q.db"), "--cache-dir", str(tmp_path),
        ])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8765, 0)


class TestRoundTrip:
    def flags(self, tmp_path):
        return [
            "--queue", str(tmp_path / "q.db"),
            "--cache-dir", str(tmp_path / "cache"),
        ]

    def test_enqueue_worker_then_warm_hit(self, tmp_path, capsys):
        flags = self.flags(tmp_path)
        assert main([*ENQUEUE_ARGS, *flags]) == 0
        err = one_line(capsys.readouterr().err)
        assert "enqueued: 2 pending task(s)" in err

        # re-submitting the identical spec does not double the tasks
        assert main([*ENQUEUE_ARGS, *flags]) == 0
        assert "already queued" in one_line(capsys.readouterr().err)

        assert main([
            "worker", *flags, "--poll", "0.02", "--idle-exit", "0.3",
        ]) == 0
        worker_err = capsys.readouterr().err
        assert "exiting after" in worker_err

        # third submission answers warm, prints the figure, enqueues nothing
        assert main([*ENQUEUE_ARGS, *flags]) == 0
        captured = capsys.readouterr()
        assert "cache hit" in captured.err
        assert "nothing enqueued" in captured.err
        assert "sojourn" in captured.out or "ONTH" in captured.out

    def test_enqueue_wait_json_matches_run(self, tmp_path, capsys):
        flags = self.flags(tmp_path)
        assert main([*RUN_ARGS, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)

        assert main([*ENQUEUE_ARGS, *flags]) == 0
        capsys.readouterr()
        assert main(["worker", *flags, "--poll", "0.02", "--idle-exit", "0.3",
                     "--quiet"]) == 0
        quiet_err = capsys.readouterr().err
        assert quiet_err == ""

        assert main([*ENQUEUE_ARGS, *flags, "--wait", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cached"] is True
        serial.pop("elapsed_seconds")
        serial.pop("spec")
        assert payload["result"] == serial

    def test_worker_max_tasks_stops_early(self, tmp_path, capsys):
        flags = self.flags(tmp_path)
        assert main([*ENQUEUE_ARGS, *flags]) == 0
        capsys.readouterr()
        assert main([
            "worker", *flags, "--poll", "0.02", "--max-tasks", "1",
        ]) == 0
        assert "exiting after 1 task(s)" in capsys.readouterr().err

    def test_run_with_queue_backend_prints_backend_label(
        self, tmp_path, capsys
    ):
        queue = str(tmp_path / "q.db")
        assert main([*RUN_ARGS, "--queue", queue]) == 0
        out = capsys.readouterr().out
        assert f"backend=queue {queue}" in out
