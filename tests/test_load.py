"""Tests for the server load functions (repro.core.load)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load import CallableLoad, LinearLoad, LoadFunction, PowerLoad, QuadraticLoad


class TestLinearLoad:
    def test_values(self):
        load = LinearLoad()
        out = load(np.array([1.0, 2.0]), np.array([4, 4]))
        np.testing.assert_allclose(out, [4.0, 2.0])

    def test_zero_requests_zero_load(self):
        out = LinearLoad()(np.array([1.0]), np.array([0]))
        np.testing.assert_allclose(out, [0.0])

    def test_is_assignment_invariant(self):
        assert LinearLoad().assignment_invariant_for_uniform_strength

    def test_invariance_holds_numerically(self):
        """Total linear load is split-independent under uniform strength."""
        load = LinearLoad()
        strengths = np.ones(3)
        a = load(strengths, np.array([6, 0, 0])).sum()
        b = load(strengths, np.array([2, 2, 2])).sum()
        assert a == pytest.approx(b)

    def test_broadcasts_over_rounds(self):
        out = LinearLoad()(np.ones(2), np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2)

    def test_satisfies_protocol(self):
        assert isinstance(LinearLoad(), LoadFunction)


class TestQuadraticLoad:
    def test_values(self):
        out = QuadraticLoad()(np.array([2.0]), np.array([6]))
        np.testing.assert_allclose(out, [9.0])

    def test_not_assignment_invariant(self):
        assert not QuadraticLoad().assignment_invariant_for_uniform_strength

    def test_balancing_reduces_total(self):
        """Convexity: even split is cheaper than piling on one server."""
        load = QuadraticLoad()
        strengths = np.ones(2)
        piled = load(strengths, np.array([8, 0])).sum()
        split = load(strengths, np.array([4, 4])).sum()
        assert split < piled

    def test_satisfies_protocol(self):
        assert isinstance(QuadraticLoad(), LoadFunction)


class TestPowerLoad:
    def test_exponent_one_matches_linear(self):
        s, c = np.array([1.0, 3.0]), np.array([5, 6])
        np.testing.assert_allclose(PowerLoad(1.0)(s, c), LinearLoad()(s, c))

    def test_exponent_two_matches_quadratic(self):
        s, c = np.array([1.0, 3.0]), np.array([5, 6])
        np.testing.assert_allclose(PowerLoad(2.0)(s, c), QuadraticLoad()(s, c))

    def test_invariance_flag_tracks_exponent(self):
        assert PowerLoad(1.0).assignment_invariant_for_uniform_strength
        assert not PowerLoad(1.5).assignment_invariant_for_uniform_strength

    def test_rejects_concave_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            PowerLoad(0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        exponent=st.floats(1.0, 3.0),
        count=st.integers(0, 100),
        strength=st.floats(0.5, 4.0),
    )
    def test_monotone_in_count(self, exponent, count, strength):
        load = PowerLoad(exponent)
        s = np.array([strength])
        assert load(s, np.array([count + 1]))[0] >= load(s, np.array([count]))[0]


class TestCallableLoad:
    def test_wraps_custom_function(self):
        load = CallableLoad(lambda w, n: np.sqrt(n / w) * (n / w))
        out = load(np.array([1.0]), np.array([4]))
        np.testing.assert_allclose(out, [8.0])

    def test_checks_shape(self):
        bad = CallableLoad(lambda w, n: np.zeros(7))
        with pytest.raises(ValueError, match="shape"):
            bad(np.ones(2), np.ones(2))

    def test_defaults_to_non_invariant(self):
        load = CallableLoad(lambda w, n: n / w)
        assert not load.assignment_invariant_for_uniform_strength
