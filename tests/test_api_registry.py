"""Tests for the component registries (repro.api.registry)."""

import pytest

from repro.api.registry import (
    FIGURES,
    Registry,
    UnknownNameError,
    list_figures,
    list_policies,
    list_scenarios,
    list_topologies,
    resolve_figure,
    resolve_policy,
    resolve_scenario,
    resolve_topology,
)


class TestPolicyRegistry:
    @pytest.mark.parametrize("name,expected", [
        ("onth", "OnTH"),
        ("onbr", "OnBR"),
        ("onbr-fixed", "OnBR"),
        ("onconf", "OnConf"),
        ("opt", "Opt"),
        ("beamopt", "BeamOpt"),
        ("offbr", "OffBR"),
        ("offth", "OffTH"),
        ("offstat", "OffStat"),
        ("workfunction", "WorkFunctionPolicy"),
        ("wfa", "WorkFunctionPolicy"),
    ])
    def test_every_exported_policy_resolves(self, name, expected):
        assert resolve_policy(name).__name__ == expected

    def test_onbr_dyn_factory(self):
        policy = resolve_policy("onbr-dyn")()
        assert policy.name == "ONBR-dyn"

    def test_static_policy_registered(self):
        from repro.algorithms import StaticPolicy

        assert resolve_policy("static") is StaticPolicy

    def test_case_and_separator_insensitive(self):
        assert resolve_policy("ONTH") is resolve_policy("onth")
        assert resolve_policy("ONBR_DYN") is resolve_policy("onbr-dyn")

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownNameError, match="did you mean 'onth'"):
            resolve_policy("onthh")

    def test_unknown_name_lists_inventory(self):
        with pytest.raises(UnknownNameError, match="offstat"):
            resolve_policy("zzz-nonsense")

    def test_unknown_name_error_pickles(self):
        # Process-pool workers ship this exception back to the parent.
        import pickle

        error = UnknownNameError("policy", "onthh", ("onth", "onbr"))
        rebuilt = pickle.loads(pickle.dumps(error))
        assert isinstance(rebuilt, UnknownNameError)
        assert rebuilt.suggestions == error.suggestions
        assert str(rebuilt) == str(error)


class TestScenarioRegistry:
    @pytest.mark.parametrize("name,expected", [
        ("commuter", "CommuterScenario"),
        ("commuter-dynamic", "CommuterScenario"),
        ("commuter-static", "commuter_static"),
        ("timezones", "TimeZoneScenario"),
        ("time-zones", "TimeZoneScenario"),
        ("mobility", "MobilityScenario"),
    ])
    def test_every_exported_scenario_resolves(self, name, expected):
        assert resolve_scenario(name).__name__ == expected

    def test_commuter_static_builds_static_variant(self):
        from repro.topology.generators import line

        substrate = line(8, seed=0)
        scenario = resolve_scenario("commuter-static")(substrate, sojourn=5)
        assert not scenario.dynamic_load

    def test_unknown_scenario(self):
        with pytest.raises(UnknownNameError, match="scenario"):
            resolve_scenario("commuterr")


class TestTopologyRegistry:
    @pytest.mark.parametrize("name", [
        "erdos_renyi", "er", "line", "ring", "star", "grid", "random_tree",
        "tree", "att", "as7018",
    ])
    def test_every_exported_topology_resolves(self, name):
        assert callable(resolve_topology(name))

    def test_build_matches_direct_call(self):
        from repro.topology.generators import star

        assert resolve_topology("star") is star

    def test_unknown_topology(self):
        with pytest.raises(UnknownNameError, match="topology"):
            resolve_topology("erdos")


class TestFigureRegistry:
    def test_all_19_figures_registered(self):
        names = list_figures()
        for i in range(1, 20):
            assert f"fig{i:02d}" in names

    def test_rocketfuel_and_ablations_registered(self):
        names = set(list_figures())
        assert "rocketfuel" in names
        assert {n for n in names if n.startswith("abl-")} == {
            "abl-routing", "abl-cache", "abl-threshold",
            "abl-migration", "abl-mobility", "abl-beta",
        }

    def test_entry_unpacks_like_a_tuple(self):
        fn, quick = resolve_figure("fig03")
        assert callable(fn)
        assert isinstance(quick, dict) and "runs" in quick

    def test_quick_params_are_accepted_by_the_figure(self):
        import inspect

        for name, (fn, quick) in FIGURES.items():
            accepted = set(inspect.signature(fn).parameters)
            assert set(quick) <= accepted, (name, quick)


class TestListings:
    def test_listings_sorted_and_nonempty(self):
        for listing in (list_policies(), list_scenarios(), list_topologies(),
                        list_figures()):
            assert listing
            assert list(listing) == sorted(listing)


class TestRegistryMechanics:
    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a")(int)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a")(float)

    def test_same_object_reregistration_tolerated(self):
        registry = Registry("widget")
        registry.register("a")(int)
        registry.register("a")(int)
        assert registry.resolve("a") is int

    def test_contains_and_len(self):
        registry = Registry("widget")
        registry.register("a", aliases=("b",))(int)
        assert "a" in registry and "B" in registry and "c" not in registry
        assert len(registry) == 2

    def test_items_lists_each_registration_once(self):
        # Aliases must resolve but not duplicate inventory-driven consumers
        # (the CLI's --list and `all` iterate items()).
        registry = Registry("widget")
        registry.register("alpha", aliases=("a", "al"))(int)
        registry.register("beta")(float)
        assert registry.items() == (("alpha", int), ("beta", float))
        assert registry.resolve("al") is int

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError, match="non-empty"):
            registry.register("  ")(int)

    def test_reexecuted_definition_may_overwrite(self):
        # A module re-imported after a failed first import re-runs its
        # decorators with fresh objects; same module+qualname = same
        # definition, which must not raise "already registered".
        def make():
            def widget():
                pass
            return widget

        first, second = make(), make()
        registry = Registry("widget")
        registry.register("w")(first)
        registry.register("w")(second)
        assert registry.resolve("w") is second

    def test_failed_builtin_import_is_retried(self):
        # A loader failure must not latch the registry into a permanently
        # empty state masking the real cause behind "unknown name" errors.
        registry = Registry("widget", builtin_modules=("no_such_module_xyz",))
        for _ in range(2):
            with pytest.raises(ModuleNotFoundError):
                registry.resolve("anything")
