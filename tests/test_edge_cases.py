"""Edge-case tests across modules: the paths the main suites skirt around.

Restricted access-point sets, empty rounds inside OPT/policies, offline
tenants inside the multi-service loop, hotspot oversubscription, and other
boundary conditions a downstream user will eventually hit.
"""

import numpy as np
import pytest

from repro.algorithms import OffStat, OnBR, OnTH, Opt
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.multiservice import ServiceSpec, simulate_services
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.topology.substrate import Link, Substrate
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.timezones import TimeZoneScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


@pytest.fixture
def restricted_substrate():
    """A 6-node path where only the two ends admit terminals."""
    links = [Link(i, i + 1, 1.0, 1.544) for i in range(5)]
    return Substrate(6, links, access_points=[0, 5])


class TestRestrictedAccessPoints:
    def test_commuter_respects_access_points(self, restricted_substrate):
        scenario = CommuterScenario(
            restricted_substrate, period=2, sojourn=2, dynamic_load=True
        )
        trace = generate_trace(scenario, 12, seed=0)
        for requests in trace:
            assert set(requests.tolist()) <= {0, 5}

    def test_commuter_center_ranking_filtered(self, restricted_substrate):
        """The fan-out ordering only ranks admissible access points."""
        scenario = CommuterScenario(
            restricted_substrate, period=2, sojourn=1, dynamic_load=True
        )
        trace = generate_trace(scenario, 2, seed=1)
        # phase 0 uses the single access point closest to the center (2 or 3)
        assert trace[0].size == 1
        assert int(trace[0][0]) in (0, 5)

    def test_timezone_hotspots_are_access_points(self, restricted_substrate):
        scenario = TimeZoneScenario(
            restricted_substrate, period=3, sojourn=2,
            hotspot_share=1.0, requests_per_round=4,
        )
        trace = generate_trace(scenario, 12, seed=2)
        for requests in trace:
            assert set(requests.tolist()) <= {0, 5}

    def test_servers_may_sit_outside_access_points(self, restricted_substrate, costs):
        """Fleets live on any substrate node, not just access points."""
        from repro.algorithms import StaticPolicy

        middle = Configuration.single(2)
        trace = trace_of([0, 5], [0, 5])
        result = simulate(
            restricted_substrate, StaticPolicy(middle, start=middle), trace, costs
        )
        assert result.latency_cost[0] == pytest.approx(2.0 + 3.0)


class TestTimezoneOversubscription:
    def test_more_periods_than_access_points(self, line5):
        """T > |A|: hotspots repeat across periods instead of failing."""
        scenario = TimeZoneScenario(
            line5, period=9, sojourn=1, hotspot_share=1.0, requests_per_round=2
        )
        trace = generate_trace(scenario, 18, seed=3)
        assert len(trace) == 18
        assert trace.max_node <= 4


class TestEmptyRounds:
    def test_opt_handles_empty_rounds(self, line5, costs):
        trace = trace_of([0], [], [4], [])
        cost, plan = Opt.solve(line5, trace, costs)
        assert np.isfinite(cost)
        assert len(plan) == 4

    def test_online_policies_handle_empty_rounds(self, line5, costs):
        trace = trace_of([], [], [2], [])
        for policy in (OnTH(), OnBR()):
            result = simulate(line5, policy, trace, costs)
            assert result.rounds == 4
            assert result.access_cost[0] == 0.0

    def test_offstat_handles_empty_rounds(self, line5, costs):
        trace = trace_of([], [2], [])
        offstat = OffStat()
        result = simulate(line5, offstat, trace, costs)
        assert offstat.kopt >= 1
        assert result.rounds == 3

    def test_all_empty_trace(self, line5, costs):
        trace = trace_of([], [], [])
        result = simulate(line5, OnTH(), trace, costs)
        # only running costs accrue
        assert result.total_cost == pytest.approx(3 * 2.5)


class TestMultiServiceWithOfflineTenant:
    def test_offstat_tenant_is_prepared(self, line5, costs):
        """Offline policies inside the multi-service loop get the trace."""
        scenario = CommuterScenario(line5, period=4, sojourn=2)
        trace = generate_trace(scenario, 20, seed=5)
        offstat = OffStat()
        results = simulate_services(
            line5,
            [
                ServiceSpec("static", offstat, trace),
                ServiceSpec("adaptive", OnTH(), trace),
            ],
            costs,
            seed=1,
        )
        assert offstat.kopt >= 1
        assert results["static"].rounds == 20
        assert results["adaptive"].rounds == 20


class TestWirelessHop:
    def test_constant_hop_shifts_every_policy_equally(self, line5):
        base = CostModel.paper_default()
        hop = CostModel.paper_default(wireless_hop=2.0)
        trace = trace_of(*[[0, 4]] * 10)
        for policy_factory in (OnTH, OnBR):
            plain = simulate(line5, policy_factory(), trace, base)
            lifted = simulate(line5, policy_factory(), trace, hop)
            expected_shift = 2.0 * trace.total_requests
            # identical decisions => exactly the hop surcharge apart
            assert lifted.total_cost - plain.total_cost == pytest.approx(
                expected_shift
            )


class TestSingleNodeSubstrate:
    def test_everything_degenerates_gracefully(self, costs):
        sub = Substrate(1, [])
        trace = trace_of([0], [0, 0])
        result = simulate(sub, OnTH(), trace, costs)
        assert result.latency_cost.sum() == 0.0
        assert (result.n_active == 1).all()

    def test_opt_on_single_node(self, costs):
        sub = Substrate(1, [])
        trace = trace_of([0], [0])
        cost, plan = Opt.solve(sub, trace, costs)
        # two rounds: access latency 0, load 1/round, running 2.5/round
        assert cost == pytest.approx(2 * (1.0 + 2.5))
