"""Smoke tests for every figure reproduction (scaled-down parameters).

Full-scale runs live in ``benchmarks/``; here each figure function is
exercised end-to-end with tiny parameters to pin its interface and basic
shape invariants.
"""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_figure
from repro.experiments.runner import FigureResult


class TestTrajectoryFigures:
    def test_figure01_structure(self):
        result = figures.figure01(
            n=100, period=8, sojourn=5, horizon=120, sample_every=10, seed=1
        )
        assert isinstance(result, FigureResult)
        assert "servers (linear load)" in result.series
        assert "servers (quadratic load)" in result.series
        assert len(result.x_values) == 12

    def test_figure01_quadratic_uses_more_servers(self):
        result = figures.figure01(
            n=100, period=8, sojourn=5, horizon=200, sample_every=10, seed=1
        )
        linear_peak = max(result.series["servers (linear load)"])
        quad_peak = max(result.series["servers (quadratic load)"])
        assert quad_peak >= linear_peak

    def test_figure02_static_volume(self):
        result = figures.figure02(
            n=100, period=8, sojourn=5, horizon=120, sample_every=10, seed=1
        )
        volumes = set(result.series["requests/round"])
        assert volumes == {16}  # 2^(T/2), constant for static load


class TestSizeSweeps:
    @pytest.mark.parametrize(
        "fig", [figures.figure03, figures.figure04, figures.figure05]
    )
    def test_series_and_shape(self, fig):
        result = fig(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)
        assert set(result.series) == {"ONTH", "ONBR-fixed", "ONBR-dyn"}
        assert all(v > 0 for v in result.y("ONTH"))

    def test_figure06_breakdown_sums(self):
        result = figures.figure06(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)
        for i in range(2):
            parts = (
                result.series["access"][i]
                + result.series["running"][i]
                + result.series["migration+creation"][i]
            )
            assert parts == pytest.approx(result.series["total"][i])

    def test_figure06_access_grows_with_n(self):
        result = figures.figure06(
            sizes=(30, 120), horizon=100, sojourn=5, runs=2, seed=3
        )
        access = result.y("access")
        assert access[1] > access[0]


class TestParameterSweeps:
    def test_figure07(self):
        result = figures.figure07(
            periods=(4, 6), n=60, horizon=60, sojourn=5, runs=2, seed=4
        )
        assert result.x_values == (4, 6)
        assert set(result.series) == {"ONTH", "ONBR-fixed", "ONBR-dyn"}

    @pytest.mark.parametrize(
        "fig", [figures.figure08, figures.figure09, figures.figure10]
    )
    def test_lambda_sweeps(self, fig):
        result = fig(lambdas=(2, 10), n=50, period=6, horizon=80, runs=2, seed=5)
        assert result.x_values == (2, 10)
        for name in ("ONTH", "ONBR-fixed", "ONBR-dyn"):
            assert all(np.isfinite(result.y(name)))


class TestOptFigures:
    def test_figure11_ratios_at_least_one(self):
        result = figures.figure11(lambdas=(2, 20), n=4, horizon=40, runs=2, seed=6)
        for name in result.series_names:
            assert all(v >= 1.0 - 1e-9 for v in result.y(name))

    def test_figure12_curve_and_kopt(self):
        result = figures.figure12(n=40, horizon=60, sojourn=5, max_servers=5, seed=7)
        curve = result.y("total cost")
        assert len(curve) == 5
        assert "kopt" in result.notes

    def test_figure13_offstat_dominates_opt(self):
        result = figures.figure13(lambdas=(5, 40), n=4, horizon=40, runs=2, seed=8)
        for off, opt in zip(result.y("OFFSTAT"), result.y("OPT")):
            assert off >= opt - 1e-9

    def test_figure14_same_with_expensive_migration(self):
        result = figures.figure14(lambdas=(5,), n=4, horizon=30, runs=2, seed=9)
        assert result.y("OFFSTAT")[0] >= result.y("OPT")[0] - 1e-9

    @pytest.mark.parametrize(
        "fig", [figures.figure15, figures.figure16, figures.figure17]
    )
    def test_ratio_sweeps_geq_one(self, fig):
        result = fig(lambdas=(5, 30), n=4, horizon=40, runs=2, seed=10)
        assert set(result.series) == {"β<c", "β>c"}
        for name in result.series_names:
            assert all(v >= 1.0 - 1e-9 for v in result.y(name))

    @pytest.mark.parametrize("fig", [figures.figure18, figures.figure19])
    def test_period_ratio_sweeps(self, fig):
        result = fig(periods=(2, 4), n=4, horizon=40, runs=2, seed=11)
        assert result.x_values == (2, 4)
        for name in result.series_names:
            assert all(v >= 1.0 - 1e-9 for v in result.y(name))


class TestRocketfuelTable:
    def test_totals_and_ordering(self):
        result = figures.rocketfuel_table(horizon=150, runs=2, seed=12)
        offstat = result.y("OFFSTAT")[0]
        onth = result.y("ONTH")[0]
        onbr = result.y("ONBR")[0]
        assert offstat > 0
        # the paper's qualitative ordering
        assert offstat <= onth <= onbr * 1.2

    def test_formats_cleanly(self):
        result = figures.rocketfuel_table(horizon=60, runs=1, seed=13)
        text = format_figure(result)
        assert "OFFSTAT" in text and "ONTH" in text and "ONBR" in text
