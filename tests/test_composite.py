"""Tests for scenario combinators (repro.workload.composite)."""

import numpy as np
import pytest

from repro.topology.generators import line
from repro.workload.base import generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.composite import OverlayScenario, PhasedScenario
from repro.workload.timezones import TimeZoneScenario


@pytest.fixture
def sub():
    return line(16, seed=0)


@pytest.fixture
def commuter(sub):
    return CommuterScenario(sub, period=4, sojourn=2, dynamic_load=False)


@pytest.fixture
def timezone(sub):
    return TimeZoneScenario(sub, period=4, sojourn=2, requests_per_round=3)


class TestOverlay:
    def test_volumes_add(self, commuter, timezone):
        overlay = OverlayScenario([commuter, timezone])
        trace = generate_trace(overlay, 10, seed=0)
        # static commuter carries 4/round, timezone 3/round
        assert all(r.size == 7 for r in trace)

    def test_three_way_overlay(self, commuter, timezone):
        overlay = OverlayScenario([commuter, timezone, timezone])
        trace = generate_trace(overlay, 5, seed=1)
        assert all(r.size == 10 for r in trace)

    def test_nested_overlay(self, commuter, timezone):
        inner = OverlayScenario([commuter, timezone])
        outer = OverlayScenario([inner, timezone])
        trace = generate_trace(outer, 4, seed=2)
        assert all(r.size == 10 for r in trace)

    def test_deterministic(self, commuter, timezone):
        overlay = OverlayScenario([commuter, timezone])
        a = generate_trace(overlay, 8, seed=3)
        b = generate_trace(overlay, 8, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_parts_independent_of_each_other(self, sub, commuter):
        """Adding a part must not change another part's stream."""
        tz = TimeZoneScenario(sub, period=4, sojourn=2, requests_per_round=3)
        solo = generate_trace(OverlayScenario([commuter]), 6, seed=4)
        duo = generate_trace(OverlayScenario([commuter, tz]), 6, seed=4)
        for s, d in zip(solo, duo):
            np.testing.assert_array_equal(s, d[: s.size])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            OverlayScenario([])

    def test_metadata_collects_parts(self, commuter, timezone):
        trace = generate_trace(OverlayScenario([commuter, timezone]), 3, seed=5)
        assert trace.metadata["scenario"] == "overlay"
        assert len(trace.metadata["parts"]) == 2

    def test_name_mentions_parts(self, commuter, timezone):
        overlay = OverlayScenario([commuter, timezone])
        assert "commuter" in overlay.scenario_name
        assert "timezones" in overlay.scenario_name


class TestPhased:
    def test_phase_boundaries(self, sub, commuter, timezone):
        phased = PhasedScenario([(4, commuter), (6, timezone)])
        trace = generate_trace(phased, 10, seed=0)
        assert len(trace) == 10
        # commuter static = 4 requests/round, timezone = 3
        assert all(trace[t].size == 4 for t in range(4))
        assert all(trace[t].size == 3 for t in range(4, 10))

    def test_last_phase_absorbs_remainder(self, commuter, timezone):
        phased = PhasedScenario([(4, commuter), (2, timezone)])
        trace = generate_trace(phased, 20, seed=1)
        assert len(trace) == 20
        assert trace[19].size == 3  # still the timezone regime

    def test_horizon_shorter_than_phases(self, commuter, timezone):
        phased = PhasedScenario([(10, commuter), (10, timezone)])
        trace = generate_trace(phased, 6, seed=2)
        assert len(trace) == 6
        assert all(r.size == 4 for r in trace)

    def test_deterministic(self, commuter, timezone):
        phased = PhasedScenario([(3, commuter), (3, timezone)])
        a = generate_trace(phased, 9, seed=3)
        b = generate_trace(phased, 9, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PhasedScenario([])

    def test_rejects_zero_duration(self, commuter):
        with pytest.raises(ValueError, match=">= 1"):
            PhasedScenario([(0, commuter)])

    def test_runs_through_simulator(self, sub, commuter, timezone):
        from repro.algorithms import OnTH
        from repro.core.costs import CostModel
        from repro.core.simulator import simulate

        phased = PhasedScenario([(15, commuter), (15, timezone)])
        trace = generate_trace(phased, 30, seed=4)
        result = simulate(sub, OnTH(), trace, CostModel.paper_default())
        assert result.rounds == 30
