"""Tests for the shared best-response machinery (repro.algorithms._families).

The central consistency contract: the transition cost a Choice *predicts*
must equal what :func:`price_transition` *charges* once the choice is
applied — otherwise policies would systematically mis-rank candidates.
"""

import numpy as np
import pytest

from repro.algorithms._families import (
    apply_choice,
    best_choice,
    enumerate_choices,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.servercache import InactiveServerCache
from repro.core.transitions import price_transition
from repro.topology.generators import line


@pytest.fixture
def path9():
    return line(9, seed=0, unit_latency=False, latency_range=(10, 10))


def make_batch(substrate, costs, rounds):
    return RequestBatch(substrate, costs, [np.asarray(r) for r in rounds])


def make_cache(*nodes, max_size=3):
    cache = InactiveServerCache(max_size=max_size)
    for node in nodes:
        cache.push(node)
    return cache


class TestEnumerate:
    def test_families_present_for_rich_state(self, path9, costs):
        batch = make_batch(path9, costs, [[0, 8]] * 3)
        config = Configuration((2, 6), (4,))
        cache = make_cache(4)
        kinds = {c.kind for c in enumerate_choices(batch, config, cache, costs)}
        assert kinds == {"stay", "migrate", "deactivate", "activate", "create"}

    def test_no_deactivate_for_single_server(self, path9, costs):
        batch = make_batch(path9, costs, [[0]])
        config = Configuration((2,))
        kinds = {
            c.kind
            for c in enumerate_choices(batch, config, make_cache(), costs)
        }
        assert "deactivate" not in kinds

    def test_no_activate_with_empty_cache(self, path9, costs):
        batch = make_batch(path9, costs, [[0]])
        config = Configuration((2,))
        kinds = {
            c.kind
            for c in enumerate_choices(batch, config, make_cache(), costs)
        }
        assert "activate" not in kinds

    def test_allow_add_false_suppresses_growth(self, path9, costs):
        batch = make_batch(path9, costs, [[0]])
        config = Configuration((2,), (4,))
        cache = make_cache(4)
        kinds = {
            c.kind
            for c in enumerate_choices(batch, config, cache, costs, allow_add=False)
        }
        assert kinds <= {"stay", "migrate", "deactivate"}

    def test_migration_excludes_occupied_targets(self, path9, costs):
        batch = make_batch(path9, costs, [[0, 8]] * 2)
        config = Configuration((2, 6), (4,))
        cache = make_cache(4)
        for choice in enumerate_choices(batch, config, cache, costs):
            if choice.kind == "migrate":
                assert choice.target not in config.occupied

    def test_stay_cost_matches_batch(self, path9, costs):
        batch = make_batch(path9, costs, [[0, 8], [4]])
        config = Configuration((2, 6))
        stay = next(
            c
            for c in enumerate_choices(batch, config, make_cache(), costs)
            if c.kind == "stay"
        )
        assert stay.access == pytest.approx(batch.exact_access_cost((2, 6)))
        assert stay.transition_cost == 0.0


class TestPredictionMatchesPricer:
    @pytest.mark.parametrize("expensive", [False, True])
    def test_every_choice_priced_as_predicted(self, path9, expensive):
        costs = (
            CostModel.migration_expensive() if expensive else CostModel.paper_default()
        )
        batch = make_batch(path9, costs, [[0, 8], [1, 7]])
        config = Configuration((2, 6), (4,))
        for choice in enumerate_choices(batch, config, make_cache(4), costs):
            cache = make_cache(4)
            new_config = apply_choice(choice, config, cache)
            charged = price_transition(config, new_config, costs).cost
            assert charged == pytest.approx(choice.transition_cost), choice.kind

    def test_create_uses_donor_when_cached(self, path9, costs):
        batch = make_batch(path9, costs, [[0]])
        config = Configuration((8,), (4,))
        create = next(
            c
            for c in enumerate_choices(batch, config, make_cache(4), costs)
            if c.kind == "create"
        )
        assert create.transition_cost == costs.migration  # donor -> β

    def test_create_without_donor_costs_c(self, path9, costs):
        batch = make_batch(path9, costs, [[0]])
        config = Configuration((8,))
        create = next(
            c
            for c in enumerate_choices(batch, config, make_cache(), costs)
            if c.kind == "create"
        )
        assert create.transition_cost == costs.creation


class TestApply:
    def test_stay_keeps_everything(self, path9, costs):
        config = Configuration((2,), (4,))
        batch = make_batch(path9, costs, [[0]])
        cache = make_cache(4)
        stay = next(
            c for c in enumerate_choices(batch, config, cache, costs) if c.kind == "stay"
        )
        assert apply_choice(stay, config, cache) == config

    def test_deactivate_pushes_to_cache(self, path9, costs):
        config = Configuration((2, 6))
        batch = make_batch(path9, costs, [[6]])
        cache = make_cache()
        deact = next(
            c
            for c in enumerate_choices(batch, config, cache, costs)
            if c.kind == "deactivate"
        )
        new_config = apply_choice(deact, config, cache)
        assert new_config.n_active == 1
        assert new_config.n_inactive == 1
        assert len(cache) == 1

    def test_activate_consumes_cache_entry(self, path9, costs):
        config = Configuration((2,), (4,))
        batch = make_batch(path9, costs, [[4, 4, 4]])
        cache = make_cache(4)
        activate = next(
            c
            for c in enumerate_choices(batch, config, cache, costs)
            if c.kind == "activate"
        )
        new_config = apply_choice(activate, config, cache)
        assert new_config.hosts_active(4)
        assert len(cache) == 0

    def test_best_choice_prefers_stay_on_tie(self, path9, costs):
        batch = make_batch(path9, costs, [])  # empty window: all access zero
        config = Configuration((2,))
        choices = enumerate_choices(batch, config, make_cache(), costs)
        # zero rounds: stay should win by priority over equal-cost options
        chosen = best_choice(choices, 0)
        assert chosen.kind == "stay"

    def test_best_choice_empty_raises(self):
        with pytest.raises(ValueError, match="no choices"):
            best_choice([], 1)
