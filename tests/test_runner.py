"""Tests for the sweep engine (repro.experiments.runner)."""

import numpy as np
import pytest

from repro.experiments.runner import FigureResult, sweep_experiment


class TestFigureResult:
    def make(self):
        return FigureResult(
            figure="figX",
            title="test",
            x_label="x",
            x_values=(1, 2, 3),
            series={"a": (1.0, 2.0, 3.0), "b": (9.0, 8.0, 7.0)},
            errors={"a": (0.1, 0.1, 0.1)},
        )

    def test_accessors(self):
        result = self.make()
        assert result.y("a") == (1.0, 2.0, 3.0)
        assert result.series_names == ("a", "b")

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError, match="values"):
            FigureResult("f", "t", "x", (1, 2), {"a": (1.0,)})

    def test_unknown_error_series_rejected(self):
        with pytest.raises(ValueError, match="unknown series"):
            FigureResult(
                "f", "t", "x", (1,), {"a": (1.0,)}, errors={"zzz": (0.0,)}
            )

    def test_misaligned_errors_rejected(self):
        with pytest.raises(ValueError, match="misaligned"):
            FigureResult(
                "f", "t", "x", (1,), {"a": (1.0,)}, errors={"a": (0.0, 0.0)}
            )


class TestSweepExperiment:
    def test_averages_across_runs(self):
        def replicate(x, rng):
            return {"y": float(x) * 10 + rng.normal(0, 0.001)}

        result = sweep_experiment(
            "f", "t", "x", [1, 2, 3], replicate, runs=5, seed=0
        )
        np.testing.assert_allclose(result.y("y"), [10, 20, 30], atol=0.01)
        assert all(e < 0.01 for e in result.errors["y"])

    def test_deterministic_given_seed(self):
        def replicate(x, rng):
            return {"y": float(rng.random())}

        a = sweep_experiment("f", "t", "x", [1, 2], replicate, runs=3, seed=9)
        b = sweep_experiment("f", "t", "x", [1, 2], replicate, runs=3, seed=9)
        assert a.series == b.series

    def test_different_seeds_differ(self):
        def replicate(x, rng):
            return {"y": float(rng.random())}

        a = sweep_experiment("f", "t", "x", [1], replicate, runs=2, seed=1)
        b = sweep_experiment("f", "t", "x", [1], replicate, runs=2, seed=2)
        assert a.series != b.series

    def test_replicates_get_independent_rngs(self):
        seen = []

        def replicate(x, rng):
            seen.append(float(rng.random()))
            return {"y": 0.0}

        sweep_experiment("f", "t", "x", [1], replicate, runs=4, seed=0)
        assert len(set(seen)) == 4

    def test_single_run_has_zero_stderr(self):
        result = sweep_experiment(
            "f", "t", "x", [5], lambda x, rng: {"y": 1.0}, runs=1, seed=0
        )
        assert result.errors["y"] == (0.0,)

    def test_inconsistent_series_keys_rejected(self):
        def replicate(x, rng):
            return {"a": 1.0} if x == 1 else {"b": 1.0}

        with pytest.raises(RuntimeError, match="series"):
            sweep_experiment("f", "t", "x", [1, 2], replicate, runs=1, seed=0)

    def test_inconsistent_keys_within_first_point_rejected(self):
        """Ragged replicates inside the *first* sweep point must fail too,
        not merge silently into misaligned series."""
        samples = iter([{"a": 1.0}, {"a": 1.0, "b": 2.0}])

        def replicate(x, rng):
            return next(samples)

        with pytest.raises(RuntimeError, match="series"):
            sweep_experiment("f", "t", "x", [1], replicate, runs=2, seed=0)

    def test_serial_ragged_series_fails_fast(self):
        """A serial sweep aborts at the offending replicate, not after
        burning through every remaining sweep point."""
        calls = []

        def replicate(x, rng):
            calls.append(x)
            return {"a": 1.0} if x < 3 else {"b": 1.0}

        with pytest.raises(RuntimeError, match="series"):
            sweep_experiment(
                "f", "t", "x", [1, 2, 3, 4, 5], replicate, runs=1, seed=0
            )
        assert calls == [1, 2, 3]  # replicates after the bad one never ran

    def test_backend_ignoring_on_result_still_validated(self):
        """The backstop pass catches ragged series from third-party backends
        that never invoke the result hook."""
        from repro.api.execution import ExecutionBackend

        class SilentBackend(ExecutionBackend):
            def run_replicates(self, replicate, tasks, on_result=None):
                return [replicate(t.x, np.random.default_rng(t.seed))
                        for t in tasks]  # on_result deliberately ignored

        def replicate(x, rng):
            return {"a": 1.0} if x == 1 else {"b": 1.0}

        with pytest.raises(RuntimeError, match="series"):
            sweep_experiment(
                "f", "t", "x", [1, 2], replicate, runs=1, seed=0,
                backend=SilentBackend(),
            )

    def test_hook_driven_sweep_skips_backstop_revalidation(self):
        """When the backend invoked on_result for every task, the key-set
        check runs exactly once per replicate — no duplicate backstop pass.

        The validation is the only consumer of the sample's iteration
        protocol (``set(sample)``); aggregation uses ``.items()``. Counting
        ``__iter__`` calls therefore counts validation passes.
        """

        class CountedSeries(dict):
            validations = 0

            def __iter__(self):
                CountedSeries.validations += 1
                return super().__iter__()

        sweep_experiment(
            "f", "t", "x", [1, 2],
            lambda x, rng: CountedSeries({"y": float(x)}),
            runs=2, seed=0,
        )
        assert CountedSeries.validations == 4  # one per replicate, not two

    def test_to_dict_round_trip(self):
        result = sweep_experiment(
            "f", "t", "x", [1, 2], lambda x, rng: {"y": float(x)},
            runs=2, seed=0, notes="n",
        )
        rebuilt = FigureResult.from_dict(result.to_dict())
        assert rebuilt.series == result.series
        assert rebuilt.errors == result.errors
        assert rebuilt.x_values == result.x_values
        assert rebuilt.notes == "n"

    def test_runs_must_be_positive(self):
        with pytest.raises(ValueError, match="runs"):
            sweep_experiment("f", "t", "x", [1], lambda x, rng: {}, runs=0)

    def test_notes_carried(self):
        result = sweep_experiment(
            "f", "t", "x", [1], lambda x, rng: {"y": 0.0},
            runs=1, seed=0, notes="hello",
        )
        assert result.notes == "hello"
