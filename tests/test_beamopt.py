"""Tests for the beam-search offline planner (repro.algorithms.beamopt)."""

import numpy as np
import pytest

from repro.algorithms.beamopt import BeamOpt
from repro.algorithms.offstat import OffStat
from repro.algorithms.opt import Opt
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi, line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.timezones import TimeZoneScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestConsistency:
    def test_planned_cost_equals_simulated_ledger(
        self, line5_latency, costs, commuter_trace_line5
    ):
        # regenerate the commuter trace on the latency line for interest
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 60, seed=3)
        planner = BeamOpt(beam_width=32)
        result = simulate(line5_latency, planner, trace, costs)
        assert result.total_cost == pytest.approx(planner.planned_cost)

    def test_plan_length(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 25, seed=4)
        planner = BeamOpt()
        simulate(line5_latency, planner, trace, costs)
        assert len(planner.plan) == 25

    def test_requires_prepare(self, line5, costs, rng):
        with pytest.raises(RuntimeError, match="prepare"):
            BeamOpt().reset(line5, costs, rng)

    def test_unsolved_access_raises(self):
        with pytest.raises(RuntimeError, match="not been solved"):
            BeamOpt().planned_cost


class TestQualityBounds:
    def test_upper_bounds_opt(self, line5_latency, costs):
        """Beam search can never beat the exact optimum."""
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 50, seed=5)
        opt_cost, _ = Opt.solve(line5_latency, trace, costs)
        beam = simulate(line5_latency, BeamOpt(beam_width=16), trace, costs)
        assert beam.total_cost >= opt_cost - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wide_beam_recovers_near_optimal_cost(self, seed, line5_latency, costs):
        """A generous beam on a tiny graph lands within 10% of OPT."""
        scenario = CommuterScenario(line5_latency, period=4, sojourn=10)
        trace = generate_trace(scenario, 60, seed=seed)
        opt_cost, _ = Opt.solve(line5_latency, trace, costs)
        beam = simulate(line5_latency, BeamOpt(beam_width=256), trace, costs)
        assert beam.total_cost <= opt_cost * 1.10

    def test_wider_beam_never_worse(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=5)
        trace = generate_trace(scenario, 60, seed=6)
        narrow = simulate(line5_latency, BeamOpt(beam_width=2), trace, costs)
        wide = simulate(line5_latency, BeamOpt(beam_width=128), trace, costs)
        assert wide.total_cost <= narrow.total_cost * 1.001

    def test_beats_offstat_on_shifting_demand(self):
        """On a clearly dynamic instance the planner exploits flexibility."""
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=10, creation=100, run_active=1, run_inactive=0.5)
        rounds = [[0, 0]] * 40 + [[8, 8]] * 40
        trace = trace_of(*rounds)
        beam = simulate(sub, BeamOpt(beam_width=32), trace, cm)
        offstat = simulate(sub, OffStat(), trace, cm)
        assert beam.total_cost <= offstat.total_cost + 1e-9


class TestScale:
    def test_runs_on_graphs_beyond_opt(self, costs):
        """200-node substrate: far outside OPT's 3^n space, fine for beam."""
        sub = erdos_renyi(200, seed=9)
        scenario = TimeZoneScenario(sub, period=4, sojourn=10, requests_per_round=8)
        trace = generate_trace(scenario, 80, seed=10)
        result = simulate(sub, BeamOpt(beam_width=24), trace, costs)
        assert result.rounds == 80
        assert np.isfinite(result.total_cost)

    def test_max_servers_respected(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 40, seed=11)
        planner = BeamOpt(beam_width=32, max_servers=1)
        simulate(line5_latency, planner, trace, costs)
        assert all(cfg.n_servers <= 1 for cfg in planner.plan)

    def test_beam_width_validated(self):
        with pytest.raises(ValueError, match="beam_width"):
            BeamOpt(beam_width=0)


class TestSuccessorPricing:
    """The hand-assigned successor deltas must match the general pricer."""

    @pytest.mark.parametrize("expensive", [False, True])
    def test_deltas_match_price_transition(self, expensive):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.config import Configuration
        from repro.core.transitions import price_transition

        sub = line(9, seed=0)
        costs = (
            CostModel.migration_expensive()
            if expensive
            else CostModel.paper_default()
        )
        planner = BeamOpt(beam_width=8)

        @settings(max_examples=40, deadline=None)
        @given(
            active=st.sets(st.integers(0, 8), min_size=1, max_size=4),
            inactive=st.sets(st.integers(0, 8), max_size=2),
            targets=st.lists(st.integers(0, 8), max_size=4, unique=True),
        )
        def check(active, inactive, targets):
            inactive = inactive - active
            act, inact = frozenset(active), frozenset(inactive)
            old = Configuration.of(act, inact)
            for new_act, new_inact, delta in planner._successors(
                sub, costs, act, inact, list(targets)
            ):
                new = Configuration.of(new_act, new_inact)
                charged = price_transition(old, new, costs).cost
                assert charged == pytest.approx(delta), (old, new)

        check()
