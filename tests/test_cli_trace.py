"""Tests for the trace CLI surface: validate / stats / convert."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.__main__ import main, trace_command
from repro.workload.base import Trace

SAMPLE = str(Path(__file__).parent / "data" / "sample_requests.csv")


def one_line(err: str) -> str:
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, err
    return lines[0]


class TestValidate:
    def test_sample_log_validates(self, capsys):
        assert main(["trace", "validate", SAMPLE]) == 0
        out = capsys.readouterr().out
        assert "ok: True" in out
        assert "rounds: 24" in out

    def test_json_payload(self, capsys):
        assert main(["trace", "validate", SAMPLE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rounds"] == 24
        assert payload["total_requests"] == 87
        assert "busiest_nodes" not in payload  # stats-only detail

    def test_missing_file_is_exit_2(self, capsys):
        assert main(["trace", "validate", "no-such-file.csv"]) == 2
        assert one_line(capsys.readouterr().err).startswith("error:")

    def test_out_of_order_log_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "backwards.csv"
        path.write_text("round,node\n5,a\n1,b\n")
        assert main(["trace", "validate", str(path)]) == 2
        assert "sort" in one_line(capsys.readouterr().err)

    def test_json_error_payload(self, tmp_path, capsys):
        path = tmp_path / "backwards.csv"
        path.write_text("round,node\n5,a\n1,b\n")
        assert main(["trace", "validate", str(path), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "sort" in payload["error"]

    def test_unknown_suffix_needs_format(self, tmp_path, capsys):
        path = tmp_path / "requests.log"
        path.write_text("round,node\n0,a\n")
        assert main(["trace", "validate", str(path)]) == 2
        assert "format" in one_line(capsys.readouterr().err)
        capsys.readouterr()
        assert main(["trace", "validate", str(path), "--format", "csv"]) == 0


class TestStats:
    def test_stats_reports_busiest_nodes(self, capsys):
        assert main(["trace", "stats", SAMPLE, "--json", "--top", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["busiest_nodes"]) == 2
        assert payload["distinct_nodes"] == 6

    def test_requests_per_round_batching(self, tmp_path, capsys):
        path = tmp_path / "no-rounds.csv"
        path.write_text("node\na\nb\nc\nd\ne\n")
        assert main([
            "trace", "stats", str(path), "--requests-per-round", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 3

    def test_round_duration_buckets(self, tmp_path, capsys):
        path = tmp_path / "ts.jsonl"
        path.write_text(
            '{"round": 0.2, "node": "a"}\n{"round": 3.7, "node": "b"}\n'
        )
        assert main([
            "trace", "stats", str(path), "--round-duration", "1.0", "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["rounds"] == 4


class TestConvert:
    def test_convert_then_replay_scored_vs_opt(self, tmp_path, capsys):
        out = tmp_path / "sample.npz"
        assert main([
            "trace", "convert", SAMPLE, "--out", str(out),
            "--nodes", "5", "--mapping", "hash", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["rounds"] == 24

        trace = Trace.load(out)
        assert len(trace) == 24
        assert trace.max_node < 5
        assert trace.metadata["mapping"] == "hash"
        assert "sha256" in trace.metadata["converted_from"]

        # the acceptance path: converted log replays through a declarative
        # run and is scored against OPT
        assert main([
            "run", "--policy", "onth", "--topology", "line:n=5",
            "--scenario", f"replay:path={out}",
            "--metric", "cost_ratio_vs:reference=OPT",
            "--horizon", "24", "--runs", "1", "--json",
        ]) == 0
        result = json.loads(capsys.readouterr().out)
        (ratio,) = result["series"]["ONTH"]
        assert ratio >= 1.0

    def test_convert_requires_out(self, capsys):
        assert main(["trace", "convert", SAMPLE]) == 2
        assert "--out" in one_line(capsys.readouterr().err)

    def test_mapping_requires_nodes(self, capsys):
        assert main([
            "trace", "convert", SAMPLE, "--out", "x.npz", "--mapping", "hash",
        ]) == 2
        assert "--nodes" in one_line(capsys.readouterr().err)

    def test_sort_repairs_out_of_order_logs(self, tmp_path, capsys):
        path = tmp_path / "backwards.csv"
        path.write_text("round,node\n2,a\n0,b\n1,a\n")
        out = tmp_path / "sorted.npz"
        assert main([
            "trace", "convert", str(path), "--out", str(out),
            "--nodes", "3", "--sort",
        ]) == 0
        capsys.readouterr()
        trace = Trace.load(out)
        assert [int(r.size) for r in trace] == [1, 1, 1]

    def test_round_robin_convert_is_dense(self, tmp_path, capsys):
        out = tmp_path / "rr.npz"
        assert main([
            "trace", "convert", SAMPLE, "--out", str(out),
            "--nodes", "4", "--mapping", "round_robin",
        ]) == 0
        capsys.readouterr()
        trace = Trace.load(out)
        assert set(np.concatenate(trace.rounds).tolist()) <= {0, 1, 2, 3}

    def test_limit_truncates(self, tmp_path, capsys):
        out = tmp_path / "lim.npz"
        assert main([
            "trace", "convert", SAMPLE, "--out", str(out),
            "--nodes", "5", "--limit", "6",
        ]) == 0
        capsys.readouterr()
        assert len(Trace.load(out)) == 6

    def test_trace_command_direct_entry(self, capsys):
        assert trace_command(["validate", SAMPLE]) == 0
        capsys.readouterr()


class TestNegativeNodes:
    def test_validate_flags_negative_node(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("round,node\n0,3\n1,-2\n")
        assert main(["trace", "validate", str(path)]) == 2
        assert "negative node key '-2'" in one_line(capsys.readouterr().err)

    def test_validate_negative_json_payload(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("round,node\n0,-7\n")
        assert main(["trace", "validate", str(path), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "negative node key" in payload["error"]

    def test_validate_accepts_non_integer_keys(self, tmp_path, capsys):
        # raw string keys (hostnames etc.) are fine — only keys that parse
        # as negative integers can never replay and are rejected
        path = tmp_path / "named.csv"
        path.write_text("round,node\n0,alpha\n0,beta\n")
        assert main(["trace", "validate", str(path)]) == 0
        assert "ok: True" in capsys.readouterr().out

    def test_convert_mapping_none_rejects_negative(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("round,node\n0,1\n0,-5\n")
        out = tmp_path / "out.npz"
        assert main([
            "trace", "convert", str(path), "--out", str(out),
            "--mapping", "none",
        ]) == 2
        assert "negative node key" in one_line(capsys.readouterr().err)
