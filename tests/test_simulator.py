"""Tests for the synchronous game loop (repro.core.simulator)."""

import numpy as np
import pytest

from repro.algorithms.static import StaticPolicy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy
from repro.core.routing import route_requests
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace


class ScriptedPolicy(AllocationPolicy):
    """Returns a pre-scripted configuration per round (test double)."""

    def __init__(self, initial, script):
        self.initial = initial
        self.script = script
        self.seen = []

    def reset(self, substrate, costs, rng):
        return self.initial

    def decide(self, t, requests, routing):
        self.seen.append((t, requests.copy(), routing))
        return self.script[t]


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestAccounting:
    def test_access_paid_by_previous_config(self, line5, costs):
        """Round t's requests are served by the configuration from t-1."""
        script = [Configuration.single(4), Configuration.single(4)]
        policy = ScriptedPolicy(Configuration.single(0), script)
        trace = trace_of([0], [0])
        result = simulate(line5, policy, trace, costs)
        # round 0 served from node 0 (distance 0), round 1 from node 4 (distance 4)
        assert result.latency_cost[0] == pytest.approx(0.0)
        assert result.latency_cost[1] == pytest.approx(4.0)

    def test_migration_charged_on_switch(self, line5, costs):
        script = [Configuration.single(1), Configuration.single(1)]
        policy = ScriptedPolicy(Configuration.single(0), script)
        result = simulate(line5, policy, trace_of([0], [0]), costs)
        assert result.migration_cost[0] == costs.migration
        assert result.migration_cost[1] == 0.0
        assert result.total_migrations == 1

    def test_creation_charged_for_growth(self, line5, costs):
        script = [Configuration((0, 4))]
        policy = ScriptedPolicy(Configuration.single(0), script)
        result = simulate(line5, policy, trace_of([2]), costs)
        assert result.creation_cost[0] == costs.creation

    def test_running_cost_of_new_config(self, line5, costs):
        script = [Configuration((0, 4)), Configuration((0, 4))]
        policy = ScriptedPolicy(Configuration.single(0), script)
        result = simulate(line5, policy, trace_of([0], [0]), costs)
        np.testing.assert_allclose(result.running_cost, [5.0, 5.0])

    def test_inactive_running_cost(self, line5, costs):
        script = [Configuration((0,), (1,))]
        policy = ScriptedPolicy(Configuration.single(0), script)
        result = simulate(line5, policy, trace_of([0]), costs)
        assert result.running_cost[0] == pytest.approx(2.5 + 0.5)

    def test_total_equals_component_sum(self, line5, costs):
        script = [Configuration.single(t % 2) for t in range(6)]
        policy = ScriptedPolicy(Configuration.single(0), script)
        result = simulate(line5, policy, trace_of(*[[0, 4]] * 6), costs)
        assert result.total_cost == pytest.approx(result.breakdown.total)

    def test_load_recorded_separately(self, line5, costs):
        policy = ScriptedPolicy(
            Configuration.single(2), [Configuration.single(2)]
        )
        result = simulate(line5, policy, trace_of([2, 2, 2]), costs)
        assert result.load_cost[0] == pytest.approx(3.0)
        assert result.latency_cost[0] == pytest.approx(0.0)

    def test_empty_rounds_cost_running_only(self, line5, costs):
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(0)])
        result = simulate(line5, policy, trace_of([]), costs)
        assert result.access_cost[0] == 0.0
        assert result.running_cost[0] == 2.5

    def test_n_requests_recorded(self, line5, costs):
        policy = ScriptedPolicy(
            Configuration.single(0),
            [Configuration.single(0)] * 2,
        )
        result = simulate(line5, policy, trace_of([0, 1, 2], []), costs)
        np.testing.assert_array_equal(result.n_requests, [3, 0])

    def test_default_cost_model_is_paper(self, line5):
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(1)])
        result = simulate(line5, policy, trace_of([0]))
        assert result.migration_cost[0] == 40.0


class TestPolicyInteraction:
    def test_policy_sees_routing_of_current_config(self, line5, costs):
        policy = ScriptedPolicy(
            Configuration.single(3), [Configuration.single(3)]
        )
        simulate(line5, policy, trace_of([1]), costs)
        (t, requests, routing), = policy.seen
        expected = route_requests(line5, [3], np.array([1]), costs)
        assert routing.latency_cost == pytest.approx(expected.latency_cost)

    def test_scenario_name_propagates(self, line5, costs):
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(0)])
        trace = Trace((np.array([0]),), scenario_name="my-scenario")
        result = simulate(line5, policy, trace, costs)
        assert result.scenario_name == "my-scenario"
        assert result.policy_name == "ScriptedPolicy"


class TestValidation:
    def test_trace_outside_substrate_rejected(self, line5, costs):
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(0)])
        with pytest.raises(ValueError, match="substrate"):
            simulate(line5, policy, trace_of([7]), costs)

    def test_config_outside_substrate_rejected(self, line5, costs):
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(99)])
        with pytest.raises(ValueError, match="outside"):
            simulate(line5, policy, trace_of([0]), costs)

    def test_max_servers_enforced(self, line5, costs):
        policy = ScriptedPolicy(
            Configuration.single(0), [Configuration((0, 1, 2))]
        )
        with pytest.raises(ValueError, match="k=2"):
            simulate(line5, policy, trace_of([0]), costs, max_servers=2)

    def test_initial_config_checked_too(self, line5, costs):
        policy = ScriptedPolicy(Configuration((0, 1, 2)), [])
        with pytest.raises(ValueError, match="initial"):
            simulate(line5, policy, trace_of(), costs, max_servers=1)

    def test_requests_with_no_active_server_rejected(self, line5, costs):
        policy = ScriptedPolicy(Configuration.empty(), [Configuration.single(0)])
        with pytest.raises(ValueError, match="no active servers"):
            simulate(line5, policy, trace_of([1]), costs)

    def test_migration_matrix_shape_checked(self, line5):
        cm = CostModel(migration_matrix=np.zeros((3, 3)))
        policy = ScriptedPolicy(Configuration.single(0), [Configuration.single(0)])
        with pytest.raises(ValueError, match="migration_matrix"):
            simulate(line5, policy, trace_of([0]), cm)


class TestStaticPolicyThroughSimulator:
    def test_switches_to_target_in_first_round(self, line5, costs):
        target = Configuration((0, 4))
        result = simulate(line5, StaticPolicy(target), trace_of([0], [4]), costs)
        # round 0 served from the center start, round 1 from the fleet
        assert result.n_active[0] == 2
        assert result.latency_cost[1] == pytest.approx(0.0)

    def test_pre_provisioned_start(self, line5, costs):
        target = Configuration((0, 4))
        policy = StaticPolicy(target, start=target)
        result = simulate(line5, policy, trace_of([0]), costs)
        assert result.creation_cost.sum() == 0.0

    def test_build_out_charged_once(self, line5, costs):
        target = Configuration((0, 4))
        result = simulate(line5, StaticPolicy(target), trace_of([2], [2]), costs)
        # center is node 2: two newcomers 0,4; donor = the center server
        assert result.migration_cost[0] + result.creation_cost[0] == pytest.approx(
            costs.migration + costs.creation
        )
        assert result.creation_cost[1:].sum() == 0.0

    def test_rejects_empty_target(self):
        with pytest.raises(ValueError, match="at least one active"):
            StaticPolicy(Configuration.empty())
