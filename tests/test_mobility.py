"""Tests for the on/off mobility model (repro.workload.mobility)."""

import numpy as np
import pytest

from repro.topology.generators import erdos_renyi, line
from repro.workload.base import generate_trace
from repro.workload.mobility import MobilityScenario


class TestParameters:
    def test_defaults(self, line5):
        scenario = MobilityScenario(line5)
        assert scenario.n_users == 20
        assert scenario.mean_sojourn == 10.0

    def test_rejects_sub_round_sojourn(self, line5):
        with pytest.raises(ValueError, match="mean_sojourn"):
            MobilityScenario(line5, mean_sojourn=0.5)

    def test_rejects_bad_correlation(self, line5):
        with pytest.raises(ValueError, match="correlation"):
            MobilityScenario(line5, correlation=2.0)


class TestGeneratedTraces:
    def test_population_constant(self, line5):
        scenario = MobilityScenario(line5, n_users=7)
        trace = generate_trace(scenario, 25, seed=0)
        assert all(r.size == 7 for r in trace)

    def test_users_stay_mostly_put_with_long_sojourn(self):
        sub = erdos_renyi(40, p=0.1, seed=2)
        scenario = MobilityScenario(
            sub, n_users=10, mean_sojourn=1000.0, correlation=0.0
        )
        trace = generate_trace(scenario, 20, seed=1)
        # with move probability 1/1000, most rounds are identical
        unchanged = sum(
            np.array_equal(a, b) for a, b in zip(trace, list(trace)[1:])
        )
        assert unchanged >= 15

    def test_users_move_every_round_with_sojourn_one(self):
        sub = erdos_renyi(40, p=0.1, seed=2)
        scenario = MobilityScenario(
            sub, n_users=30, mean_sojourn=1.0, correlation=0.0
        )
        trace = generate_trace(scenario, 5, seed=3)
        changed = sum(
            not np.array_equal(a, b) for a, b in zip(trace, list(trace)[1:])
        )
        assert changed == 4

    def test_full_correlation_herds_users(self):
        sub = erdos_renyi(40, p=0.1, seed=2)
        scenario = MobilityScenario(
            sub, n_users=20, mean_sojourn=2.0, correlation=1.0,
            attractor_period=10_000,
        )
        trace = generate_trace(scenario, 60, seed=4)
        # eventually everyone converges on the single attractor
        final = trace[-1]
        assert np.unique(final).size <= 3

    def test_users_confined_to_access_points(self):
        from repro.topology.substrate import Link, Substrate

        sub = Substrate(
            4,
            [Link(0, 1, 1, 1), Link(1, 2, 1, 1), Link(2, 3, 1, 1)],
            access_points=[0, 3],
        )
        scenario = MobilityScenario(sub, n_users=6, mean_sojourn=1.0)
        trace = generate_trace(scenario, 15, seed=5)
        for requests in trace:
            assert set(requests.tolist()) <= {0, 3}

    def test_deterministic(self, line5):
        scenario = MobilityScenario(line5, n_users=4)
        a = generate_trace(scenario, 10, seed=9)
        b = generate_trace(scenario, 10, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_metadata(self, line5):
        scenario = MobilityScenario(line5, n_users=3, correlation=0.25)
        trace = generate_trace(scenario, 2, seed=0)
        assert trace.metadata["scenario"] == "mobility"
        assert trace.metadata["correlation"] == 0.25
