"""Tests for the ASCII chart renderer (repro.experiments.plotting)."""

import pytest

from repro.experiments.plotting import ascii_chart, render_figure_chart
from repro.experiments.runner import FigureResult


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": [1, 2, 3, 4]}, width=20, height=6)
        lines = out.splitlines()
        assert any("o" in line for line in lines)
        assert "a" in lines[-1]  # legend

    def test_min_max_labels(self):
        out = ascii_chart({"a": [10.0, 50.0]}, width=20, height=6)
        assert "50" in out and "10" in out

    def test_multiple_series_markers(self):
        out = ascii_chart({"up": [1, 2, 3], "down": [3, 2, 1]}, width=24, height=8)
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_constant_series(self):
        out = ascii_chart({"flat": [5, 5, 5]}, width=16, height=5)
        assert "flat" in out  # no division-by-zero on a flat series

    def test_single_point(self):
        out = ascii_chart({"p": [2.0]}, width=16, height=5)
        assert "o" in out

    def test_nan_points_skipped(self):
        out = ascii_chart({"a": [1.0, float("nan"), 3.0]}, width=16, height=5)
        assert "o" in out

    def test_y_label(self):
        out = ascii_chart({"a": [1, 2]}, width=16, height=5, y_label="cost")
        assert "cost" in out.splitlines()[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one series"):
            ascii_chart({})

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="empty"):
            ascii_chart({"a": []})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths differ"):
            ascii_chart({"a": [1, 2], "b": [1]})

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ascii_chart({"a": [float("nan")]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError, match="width"):
            ascii_chart({"a": [1, 2]}, width=2, height=2)

    def test_overlap_marked(self):
        """Two series crossing at a point render a collision marker."""
        out = ascii_chart({"a": [1, 5, 1], "b": [1, 5, 1]}, width=12, height=6)
        assert "?" in out


class TestRenderFigureChart:
    def make(self):
        return FigureResult(
            "figX", "demo", "λ", (1, 2, 4),
            {"ONTH": (10.0, 12.0, 9.0), "ONBR": (15.0, 18.0, 14.0)},
        )

    def test_contains_title_and_footer(self):
        out = render_figure_chart(self.make())
        assert "[figX] demo" in out
        assert "λ: 1 .. 4 (3 points)" in out

    def test_all_series_in_legend(self):
        out = render_figure_chart(self.make())
        assert "ONTH" in out and "ONBR" in out
