"""Tests for the ASCII chart renderer (repro.experiments.plotting)."""

import pytest

from repro.experiments.plotting import ascii_chart, render_figure_chart
from repro.experiments.runner import FigureResult


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": [1, 2, 3, 4]}, width=20, height=6)
        lines = out.splitlines()
        assert any("o" in line for line in lines)
        assert "a" in lines[-1]  # legend

    def test_min_max_labels(self):
        out = ascii_chart({"a": [10.0, 50.0]}, width=20, height=6)
        assert "50" in out and "10" in out

    def test_multiple_series_markers(self):
        out = ascii_chart({"up": [1, 2, 3], "down": [3, 2, 1]}, width=24, height=8)
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_constant_series(self):
        out = ascii_chart({"flat": [5, 5, 5]}, width=16, height=5)
        assert "flat" in out  # no division-by-zero on a flat series

    def test_single_point(self):
        out = ascii_chart({"p": [2.0]}, width=16, height=5)
        assert "o" in out

    def test_nan_points_skipped(self):
        out = ascii_chart({"a": [1.0, float("nan"), 3.0]}, width=16, height=5)
        assert "o" in out

    def test_y_label(self):
        out = ascii_chart({"a": [1, 2]}, width=16, height=5, y_label="cost")
        assert "cost" in out.splitlines()[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one series"):
            ascii_chart({})

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="empty"):
            ascii_chart({"a": []})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths differ"):
            ascii_chart({"a": [1, 2], "b": [1]})

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ascii_chart({"a": [float("nan")]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError, match="width"):
            ascii_chart({"a": [1, 2]}, width=2, height=2)

    def test_overlap_marked(self):
        """Two series crossing at a point render a collision marker."""
        out = ascii_chart({"a": [1, 5, 1], "b": [1, 5, 1]}, width=12, height=6)
        assert "?" in out


class TestRenderFigureChart:
    def make(self):
        return FigureResult(
            "figX", "demo", "λ", (1, 2, 4),
            {"ONTH": (10.0, 12.0, 9.0), "ONBR": (15.0, 18.0, 14.0)},
        )

    def test_contains_title_and_footer(self):
        out = render_figure_chart(self.make())
        assert "[figX] demo" in out
        assert "λ: 1 .. 4 (3 points)" in out

    def test_all_series_in_legend(self):
        out = render_figure_chart(self.make())
        assert "ONTH" in out and "ONBR" in out


class TestErrorBands:
    def test_bands_shade_between_bounds(self):
        out = ascii_chart(
            {"a": [2.0, 3.0]},
            width=16, height=8,
            bands={"a": ([1.0, 2.0], [3.0, 4.0])},
        )
        assert "·" in out
        assert "o" in out  # markers still win their cells

    def test_band_validation(self):
        with pytest.raises(ValueError, match="unknown series"):
            ascii_chart({"a": [1.0]}, bands={"b": ([0.0], [2.0])})
        with pytest.raises(ValueError, match="misaligned"):
            ascii_chart({"a": [1.0, 2.0]}, bands={"a": ([0.0], [2.0])})

    def test_axis_includes_band_extremes(self):
        out = ascii_chart(
            {"a": [5.0, 5.0]}, width=16, height=6,
            bands={"a": ([0.0, 0.0], [10.0, 10.0])},
        )
        assert "10" in out and "0" in out

    def make_confident(self):
        return FigureResult(
            "figX", "demo", "λ", (1, 2, 4),
            {"ONTH": (10.0, 12.0, 9.0)},
            errors={"ONTH": (1.0, 1.5, 0.8)},
            ci={"ONTH": ((8.0, 12.0), (9.5, 14.5), (7.7, 10.3))},
            counts=(3, 7, 3),
            ci_level=0.9,
        )

    def test_render_uses_ci_bands_and_names_them(self):
        out = render_figure_chart(self.make_confident())
        assert "·" in out
        assert "90% CI" in out

    def test_render_falls_back_to_stderr_bands(self):
        result = FigureResult(
            "figX", "demo", "λ", (1, 2),
            {"a": (10.0, 12.0)}, errors={"a": (1.0, 1.5)},
        )
        out = render_figure_chart(result)
        assert "·" in out and "±1 stderr" in out

    def test_bands_can_be_disabled(self):
        out = render_figure_chart(self.make_confident(), show_bands=False)
        assert "·" not in out and "CI" not in out

    def test_zero_spread_renders_no_band(self):
        result = FigureResult(
            "figX", "demo", "λ", (1, 2),
            {"a": (10.0, 12.0)}, errors={"a": (0.0, 0.0)},
        )
        out = render_figure_chart(result)
        assert "·" not in out
