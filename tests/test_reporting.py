"""Tests for plain-text reporting (repro.experiments.reporting)."""

import pytest

from repro.experiments.reporting import format_figure, format_table
from repro.experiments.runner import FigureResult


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["x", "y"], [[1, 2.5], [10, 33.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("y")
        # all rows same width
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678]])
        assert "1234.6" in out

    def test_small_float_four_significant(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.1235" in out

    def test_nan_rendered(self):
        out = format_table(["v"], [[float("nan")]])
        assert "nan" in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])


class TestFormatFigure:
    def make(self, with_errors=True):
        errors = {"cost": (0.5, 0.7)} if with_errors else {}
        return FigureResult(
            figure="fig99",
            title="demo figure",
            x_label="λ",
            x_values=(1, 2),
            series={"cost": (10.0, 20.0)},
            errors=errors,
            notes="a note",
        )

    def test_contains_title_and_note(self):
        out = format_figure(self.make())
        assert "[fig99] demo figure" in out
        assert "note: a note" in out

    def test_error_column_present(self):
        out = format_figure(self.make())
        assert "±" in out

    def test_error_column_suppressed_when_zero(self):
        result = FigureResult(
            "f", "t", "x", (1,), {"a": (1.0,)}, errors={"a": (0.0,)}
        )
        assert "±" not in format_figure(result)

    def test_show_errors_false(self):
        out = format_figure(self.make(), show_errors=False)
        assert "±" not in out

    def test_all_x_values_present(self):
        out = format_figure(self.make())
        body = out.splitlines()
        assert any(line.strip().startswith("1") for line in body)
        assert any(line.strip().startswith("2") for line in body)


class TestFormatFigureWithConfidence:
    def make(self, counts=(3, 5)):
        return FigureResult(
            figure="figC",
            title="confident figure",
            x_label="λ",
            x_values=(1, 2),
            series={"cost": (10.0, 20.0)},
            errors={"cost": (0.5, 0.7)},
            ci={"cost": ((9.0, 11.0), (18.5, 21.5))},
            counts=counts,
            ci_level=0.95,
        )

    def test_ci_halfwidth_column_with_level_header(self):
        out = format_figure(self.make())
        assert "±95%" in out
        # halfwidths, not stderrs: (11-9)/2 = 1, (21.5-18.5)/2 = 1.5
        assert "1.5" in out

    def test_per_point_n_column(self):
        out = format_figure(self.make())
        header = out.splitlines()[1]
        assert header.rstrip().endswith("n")
        rows = out.splitlines()[3:5]
        assert rows[0].rstrip().endswith("3")
        assert rows[1].rstrip().endswith("5")

    def test_show_errors_false_keeps_counts(self):
        out = format_figure(self.make(), show_errors=False)
        assert "±" not in out
        assert out.splitlines()[1].rstrip().endswith("n")

    def test_degenerate_ci_suppresses_the_column(self):
        result = FigureResult(
            "f", "t", "x", (1,), {"a": (1.0,)},
            errors={"a": (0.3,)},  # nonzero stderr must not resurface
            ci={"a": ((1.0, 1.0),)}, counts=(4,), ci_level=0.95,
        )
        out = format_figure(result)
        assert "±" not in out and out.splitlines()[1].rstrip().endswith("n")
