"""Tests for the declarative spec layer (repro.api.specs)."""

import json

import numpy as np
import pytest

from repro.api.specs import (
    CostSpec,
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    parse_component,
)


def small_experiment(**overrides) -> ExperimentSpec:
    defaults = dict(
        topology=TopologySpec("erdos_renyi", {"n": 30}),
        scenario=ScenarioSpec("commuter", {"sojourn": 5}),
        policies=(PolicySpec("onth", label="ONTH"), PolicySpec("onbr")),
        costs=CostSpec.paper_default(),
        horizon=40,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestComponentSpecs:
    def test_topology_build_is_deterministic(self):
        spec = TopologySpec("erdos_renyi", {"n": 25})
        a = spec.build(np.random.default_rng(3))
        b = spec.build(np.random.default_rng(3))
        assert a.n == b.n == 25
        assert np.array_equal(a.distances, b.distances)

    def test_topology_explicit_seed_param_wins(self):
        spec = TopologySpec("line", {"n": 6, "seed": 1})
        substrate = spec.build(np.random.default_rng(99))
        assert substrate.n == 6

    def test_scenario_build(self):
        substrate = TopologySpec("line", {"n": 8}).build(np.random.default_rng(0))
        scenario = ScenarioSpec("timezones", {"requests_per_round": 4}).build(substrate)
        assert scenario.requests_per_round == 4

    def test_policy_build_and_labels(self):
        from repro.api.experiment import resolve_series_labels

        assert PolicySpec("onth").build().name == "ONTH"
        spec = small_experiment(policies=(
            PolicySpec("onth", label="custom"), PolicySpec("onbr-dyn")))
        assert resolve_series_labels(spec) == ("custom", "ONBR-dyn")

    def test_params_normalised_to_tuples(self):
        spec = TopologySpec("erdos_renyi", {"n": 10, "latency_range": [1.0, 2.0]})
        assert spec.params["latency_range"] == (1.0, 2.0)

    def test_with_params_copies(self):
        spec = TopologySpec("erdos_renyi", {"n": 10})
        bigger = spec.with_params(n=20)
        assert spec.params["n"] == 10 and bigger.params["n"] == 20

    def test_non_string_labels_coerced(self):
        # CLI value parsing may deliver ints/bools for the reserved 'label'
        # param; the series name must come out a usable string, not crash.
        assert PolicySpec("onth", label=5).label == "5"
        assert PolicySpec("onth", label=True).label == "True"
        with pytest.raises(ValueError, match="non-empty"):
            PolicySpec("onth", label="  ")


class TestCostSpec:
    def test_matches_paper_default_cost_model(self):
        from repro.core.costs import CostModel

        model = CostSpec.paper_default().to_cost_model()
        reference = CostModel.paper_default()
        assert model.migration == reference.migration
        assert model.creation == reference.creation
        assert model.run_active == reference.run_active
        assert model.run_inactive == reference.run_inactive

    def test_migration_expensive(self):
        model = CostSpec.migration_expensive().to_cost_model()
        assert model.migration == 400.0 and model.creation == 40.0

    def test_load_models(self):
        from repro.core.load import LinearLoad, PowerLoad, QuadraticLoad

        assert isinstance(CostSpec(load="linear").load_function(), LinearLoad)
        assert isinstance(CostSpec(load="quadratic").load_function(), QuadraticLoad)
        power = CostSpec(load="power", load_exponent=1.5).load_function()
        assert isinstance(power, PowerLoad) and power.exponent == 1.5

    def test_unknown_load_rejected(self):
        with pytest.raises(ValueError, match="load model"):
            CostSpec(load="cubic")

    def test_bad_constants_surface_at_spec_time(self):
        with pytest.raises(ValueError):
            CostSpec(migration=-1.0)

    def test_from_dict_rejects_unknown_keys(self):
        # A typo'd constant must not silently revert to its default.
        with pytest.raises(ValueError, match="craetion"):
            CostSpec.from_dict({"migration": 400.0, "craetion": 40.0})

    def test_all_from_dicts_reject_unknown_keys(self):
        spec = small_experiment()
        data = spec.to_dict()
        with pytest.raises(ValueError, match="horizonn"):
            ExperimentSpec.from_dict({**data, "horizonn": 900})
        with pytest.raises(ValueError, match="krnd"):
            TopologySpec.from_dict({"kind": "line", "krnd": 1})
        sweep = SweepSpec(experiment=spec, parameter="horizon", values=(10,))
        with pytest.raises(ValueError, match="run"):
            SweepSpec.from_dict({**sweep.to_dict(), "run": 9})


class TestExperimentSpec:
    def test_requires_a_policy(self):
        with pytest.raises(ValueError, match="at least one policy"):
            small_experiment(policies=())

    def test_horizon_validated(self):
        with pytest.raises(ValueError, match="horizon"):
            small_experiment(horizon=0)

    def test_routing_normalised_and_validated(self):
        spec = small_experiment(routing="Load-Aware")
        assert spec.routing == "load_aware"
        with pytest.raises(ValueError, match="routing"):
            small_experiment(routing="teleport")

    def test_duplicate_explicit_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            small_experiment(policies=(PolicySpec("onth", label="x"),
                                       PolicySpec("onbr", label="x")))

    def test_same_kind_different_params_allowed(self):
        # onbr and onbr:dynamic_threshold=true report distinct .names
        # ('ONBR' vs 'ONBR-dyn'); runtime label resolution must accept them.
        from repro.api.experiment import resolve_series_labels

        spec = small_experiment(policies=(
            PolicySpec("onbr"),
            PolicySpec("onbr", {"dynamic_threshold": True}),
        ))
        assert resolve_series_labels(spec) == ("ONBR", "ONBR-dyn")

    def test_with_param_top_level(self):
        assert small_experiment().with_param("horizon", 99).horizon == 99

    def test_with_param_nested(self):
        spec = small_experiment()
        assert spec.with_param("topology.n", 50).topology.params["n"] == 50
        assert spec.with_param("scenario.sojourn", 9).scenario.params["sojourn"] == 9
        assert spec.with_param("costs.migration", 8.0).costs.migration == 8.0
        swept = spec.with_param("policies.cache_size", 5)
        assert all(p.params["cache_size"] == 5 for p in swept.policies)

    def test_with_param_bad_paths(self):
        spec = small_experiment()
        with pytest.raises(ValueError, match="cannot substitute"):
            spec.with_param("nonsense", 1)
        with pytest.raises(ValueError, match="unknown component"):
            spec.with_param("nonsense.x", 1)
        with pytest.raises(ValueError, match="empty parameter"):
            spec.with_param("topology.", 1)


class TestSerialization:
    def test_experiment_dict_round_trip(self):
        spec = small_experiment()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_experiment_json_round_trip(self):
        spec = small_experiment()
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_sweep_json_round_trip(self):
        sweep = SweepSpec(
            experiment=small_experiment(),
            parameter="topology.n",
            values=(20, 40),
            runs=2,
            seed=3,
            figure="figX",
            title="t",
            x_label="n",
            notes="notes",
        )
        rebuilt = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert rebuilt == sweep

    def test_tuple_params_survive_json(self):
        spec = small_experiment(
            topology=TopologySpec("erdos_renyi", {"n": 10, "latency_range": (2.0, 3.0)})
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.topology.params["latency_range"] == (2.0, 3.0)
        assert rebuilt == spec

    def test_specs_are_picklable(self):
        import pickle

        sweep = SweepSpec(experiment=small_experiment(), parameter="horizon",
                          values=(10, 20), runs=1)
        assert pickle.loads(pickle.dumps(sweep)) == sweep


class TestSweepSpec:
    def test_validates_parameter_path_up_front(self):
        with pytest.raises(ValueError, match="unknown component"):
            SweepSpec(experiment=small_experiment(), parameter="bogus.x",
                      values=(1, 2))

    def test_experiment_at_substitutes(self):
        sweep = SweepSpec(experiment=small_experiment(), parameter="topology.n",
                          values=(10, 20))
        assert sweep.experiment_at(20).topology.params["n"] == 20

    def test_point_sweep_defaults(self):
        sweep = SweepSpec(experiment=small_experiment())
        assert sweep.experiment_at("total cost") == sweep.experiment
        assert sweep.resolved_x_label() == "metric"

    def test_needs_values_and_runs(self):
        with pytest.raises(ValueError, match="value"):
            SweepSpec(experiment=small_experiment(), values=())
        with pytest.raises(ValueError, match="runs"):
            SweepSpec(experiment=small_experiment(), runs=0)

    def test_sweeping_seed_rejected(self):
        # Replicate randomness comes from SweepSpec.seed's SeedSequence
        # children; sweeping ExperimentSpec.seed would be a silent no-op.
        for parameter in ("seed", "name"):
            with pytest.raises(ValueError, match="cannot be swept"):
                SweepSpec(experiment=small_experiment(), parameter=parameter,
                          values=(1, 2))


class TestParseComponent:
    def test_kind_only(self):
        assert parse_component("onth") == ("onth", {})

    def test_typed_params(self):
        kind, params = parse_component(
            "erdos_renyi:n=200,p=0.02,unit_latency=true,name=foo"
        )
        assert kind == "erdos_renyi"
        assert params == {"n": 200, "p": 0.02, "unit_latency": True, "name": "foo"}

    def test_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_component("erdos_renyi:n")
        with pytest.raises(ValueError, match="empty kind"):
            parse_component(":n=2")
