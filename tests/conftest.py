"""Shared fixtures: small substrates, cost models and traces.

Everything here is deterministic (fixed seeds) so test failures reproduce
exactly. The substrates are deliberately tiny — the algorithmic invariants
they exercise do not depend on scale, and OPT needs small state spaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.topology.generators import erdos_renyi, grid, line, ring, star
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.timezones import TimeZoneScenario


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def line5():
    """5-node unit-latency path: the paper's OPT topology."""
    return line(5, seed=0)


@pytest.fixture
def line5_latency():
    """5-node path with random latencies (the ratio-figure substrate)."""
    return line(5, seed=0, unit_latency=False, latency_range=(5, 20))


@pytest.fixture
def ring6():
    return ring(6, seed=0)


@pytest.fixture
def star5():
    return star(5, seed=0)


@pytest.fixture
def grid9():
    return grid(3, 3, seed=0)


@pytest.fixture
def er30():
    """A small random substrate with non-trivial distances."""
    return erdos_renyi(30, p=0.1, seed=7)


@pytest.fixture
def costs():
    """The paper's default β=40 < c=400 model."""
    return CostModel.paper_default()


@pytest.fixture
def costs_expensive():
    """The β=400 > c=40 regime."""
    return CostModel.migration_expensive()


@pytest.fixture
def commuter_trace_line5(line5):
    scenario = CommuterScenario(line5, period=4, sojourn=5, dynamic_load=True)
    return generate_trace(scenario, 60, seed=3)


@pytest.fixture
def timezone_trace_line5(line5):
    scenario = TimeZoneScenario(
        line5, period=4, sojourn=5, requests_per_round=3
    )
    return generate_trace(scenario, 60, seed=4)


@pytest.fixture
def tiny_trace():
    """A hand-written 5-round trace on nodes 0..4."""
    return Trace(
        (
            np.array([0, 0, 1]),
            np.array([4]),
            np.array([], dtype=np.int64),
            np.array([2, 3, 4, 4]),
            np.array([1]),
        ),
        scenario_name="tiny",
    )
