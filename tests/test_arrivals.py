"""Bursty arrival processes: gamma-modulated, flash crowds, diurnal waves."""

import numpy as np
import pytest

from repro import (
    DiurnalWavesScenario,
    FlashCrowdScenario,
    GammaArrivalScenario,
    OnTH,
    simulate,
)
from repro.api.registry import resolve_scenario
from repro.workload.base import generate_trace
from repro.workload.composite import OverlayScenario


class TestGammaArrivals:
    def test_mean_rate_roughly_matches(self, er30):
        scenario = GammaArrivalScenario(er30, rate=8.0, cv=1.0, burst_length=5)
        trace = generate_trace(scenario, 400, seed=1)
        mean = trace.total_requests / len(trace)
        assert 5.0 < mean < 12.0  # Gamma mean = rate, loose statistical band

    def test_higher_cv_means_burstier_rounds(self, er30):
        smooth = GammaArrivalScenario(er30, rate=10.0, cv=0.2, burst_length=5)
        bursty = GammaArrivalScenario(er30, rate=10.0, cv=3.0, burst_length=5)
        var_smooth = np.var(
            generate_trace(smooth, 300, seed=2).requests_per_round()
        )
        var_bursty = np.var(
            generate_trace(bursty, 300, seed=2).requests_per_round()
        )
        assert var_bursty > 2 * var_smooth

    def test_concentration_skews_placement(self, er30):
        scenario = GammaArrivalScenario(er30, rate=10.0, concentration=0.05)
        hist = generate_trace(scenario, 200, seed=3).node_histogram(er30.n)
        share = hist.max() / max(hist.sum(), 1)
        assert share > 0.2  # a sparse Dirichlet concentrates the demand

    def test_requests_land_on_access_points(self, er30):
        scenario = GammaArrivalScenario(er30, rate=5.0)
        trace = generate_trace(scenario, 50, seed=4)
        aps = set(er30.access_points.tolist())
        for requests in trace:
            assert set(requests.tolist()) <= aps

    def test_parameter_validation(self, er30):
        with pytest.raises(ValueError):
            GammaArrivalScenario(er30, rate=-1)
        with pytest.raises(ValueError):
            GammaArrivalScenario(er30, cv=0)
        with pytest.raises(ValueError):
            GammaArrivalScenario(er30, burst_length=0)


class TestFlashCrowd:
    def test_flash_rounds_far_exceed_background(self, er30):
        scenario = FlashCrowdScenario(
            er30, background_rate=2.0, event_rate=0.05, peak=80.0, ramp=3
        )
        sizes = generate_trace(scenario, 300, seed=5).requests_per_round()
        assert sizes.max() > 10 * max(np.median(sizes), 1)

    def test_zero_event_rate_is_pure_background(self, er30):
        scenario = FlashCrowdScenario(er30, background_rate=3.0, event_rate=0.0)
        sizes = generate_trace(scenario, 200, seed=6).requests_per_round()
        assert sizes.max() < 20

    def test_crowd_concentrates_near_epicenter(self, er30):
        scenario = FlashCrowdScenario(
            er30, background_rate=0.5, event_rate=0.05,
            peak=100.0, ramp=2, spread=3,
        )
        hist = generate_trace(scenario, 200, seed=7).node_histogram(er30.n)
        top3 = np.sort(hist)[-3:].sum()
        assert top3 > 0.3 * hist.sum()  # flashes pile onto few sites

    def test_decay_validated(self, er30):
        with pytest.raises(ValueError, match="decay"):
            FlashCrowdScenario(er30, decay=0.0)


class TestDiurnalWaves:
    def test_day_factor_correlates_regions(self, er30):
        scenario = DiurnalWavesScenario(
            er30, n_regions=3, day_length=12, rate=20.0, day_cv=1.0
        )
        trace = generate_trace(scenario, 240, seed=8)
        daily = trace.requests_per_round().reshape(-1, 12).sum(axis=1)
        assert daily.std() > 0.2 * daily.mean()  # heavy vs light days exist

    def test_zero_day_cv_disables_day_variation(self, er30):
        scenario = DiurnalWavesScenario(
            er30, n_regions=2, day_length=8, rate=10.0, day_cv=0.0
        )
        trace = generate_trace(scenario, 80, seed=9)
        assert trace.total_requests > 0

    def test_waves_cover_all_regions(self, er30):
        scenario = DiurnalWavesScenario(er30, n_regions=3, rate=10.0)
        hist = generate_trace(scenario, 200, seed=10).node_histogram(er30.n)
        assert (hist > 0).sum() >= 3

    def test_more_regions_than_access_points_saturates(self, line5):
        scenario = DiurnalWavesScenario(line5, n_regions=50, rate=3.0)
        assert len(generate_trace(scenario, 20, seed=11)) == 20


class TestComposition:
    def test_overlay_with_synthetic_generator(self, er30):
        commuter = resolve_scenario("commuter")(er30, period=4, sojourn=2)
        flash = FlashCrowdScenario(er30, event_rate=0.1, peak=20.0)
        overlay = OverlayScenario([commuter, flash])
        trace = generate_trace(overlay, 30, seed=12)
        assert len(trace) == 30
        result = simulate(er30, OnTH(), trace)
        assert result.total_cost > 0

    def test_overlay_factory_from_spec_params(self, er30):
        factory = resolve_scenario("overlay")
        scenario = factory(
            er30,
            parts=[
                {"kind": "commuter", "params": {"period": 4, "sojourn": 2}},
                {"kind": "gamma", "params": {"rate": 3.0}},
            ],
        )
        trace = generate_trace(scenario, 16, seed=13)
        assert trace.scenario_name.startswith("overlay(")

    def test_overlay_factory_rejects_bad_parts(self, er30):
        factory = resolve_scenario("overlay")
        with pytest.raises(ValueError, match="at least one part"):
            factory(er30, parts=[])
        with pytest.raises(ValueError, match="kind"):
            factory(er30, parts=[{"params": {}}])

    def test_seed_reproducibility(self, er30):
        for cls, kwargs in (
            (GammaArrivalScenario, {"rate": 5.0}),
            (FlashCrowdScenario, {"event_rate": 0.2}),
            (DiurnalWavesScenario, {"n_regions": 2}),
        ):
            scenario = cls(er30, **kwargs)
            a = generate_trace(scenario, 25, seed=99)
            b = generate_trace(scenario, 25, seed=99)
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y)
