"""Tests for request traces (repro.workload.base)."""

import numpy as np
import pytest

from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


class TestConstruction:
    def test_rounds_frozen(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace[0][0] = 9

    def test_source_arrays_copied(self):
        src = np.array([1, 2])
        trace = Trace((src,))
        src[0] = 99
        assert trace[0][0] == 1

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="negative"):
            Trace((np.array([-1]),))

    def test_rejects_2d_round(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace((np.zeros((2, 2)),))

    def test_empty_trace(self):
        trace = Trace(())
        assert len(trace) == 0
        assert trace.total_requests == 0
        assert trace.max_node == -1


class TestQueries:
    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 5
        assert sum(arr.size for arr in tiny_trace) == tiny_trace.total_requests

    def test_total_requests(self, tiny_trace):
        assert tiny_trace.total_requests == 9

    def test_max_requests_per_round(self, tiny_trace):
        assert tiny_trace.max_requests_per_round == 4

    def test_max_node(self, tiny_trace):
        assert tiny_trace.max_node == 4

    def test_requests_per_round(self, tiny_trace):
        np.testing.assert_array_equal(
            tiny_trace.requests_per_round(), [3, 1, 0, 4, 1]
        )

    def test_node_histogram(self, tiny_trace):
        hist = tiny_trace.node_histogram(5)
        np.testing.assert_array_equal(hist, [2, 2, 1, 1, 3])

    def test_node_histogram_range_checked(self, tiny_trace):
        with pytest.raises(ValueError, match="n_nodes"):
            tiny_trace.node_histogram(3)


class TestWindowAndConcat:
    def test_window(self, tiny_trace):
        sub = tiny_trace.window(1, 4)
        assert len(sub) == 3
        np.testing.assert_array_equal(sub[0], [4])

    def test_window_bounds_checked(self, tiny_trace):
        with pytest.raises(ValueError, match="window"):
            tiny_trace.window(3, 99)

    def test_concat(self, tiny_trace):
        double = tiny_trace.concat(tiny_trace)
        assert len(double) == 10
        assert double.total_requests == 18


class TestPersistence:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        tiny_trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(tiny_trace)
        for a, b in zip(loaded, tiny_trace):
            np.testing.assert_array_equal(a, b)
        assert loaded.scenario_name == "tiny"

    def test_metadata_round_trip(self, tmp_path):
        trace = Trace(
            (np.array([1]),), scenario_name="x", metadata={"T": 4, "kind": "test"}
        )
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.metadata == {"T": 4, "kind": "test"}

    def test_empty_rounds_survive(self, tmp_path):
        trace = Trace((np.zeros(0, dtype=np.int64), np.array([2])))
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded[0].size == 0
        np.testing.assert_array_equal(loaded[1], [2])


class TestSuffixNormalisation:
    """np.savez silently appends .npz — save/load must agree on the name."""

    def test_save_without_suffix_round_trips(self, tiny_trace, tmp_path):
        written = tiny_trace.save(tmp_path / "trace")
        assert written.name == "trace.npz"
        assert written.exists()
        loaded = Trace.load(tmp_path / "trace")  # suffixless load too
        for a, b in zip(loaded, tiny_trace):
            np.testing.assert_array_equal(a, b)

    def test_save_returns_written_path(self, tiny_trace, tmp_path):
        written = tiny_trace.save(tmp_path / "trace.npz")
        assert written == tmp_path / "trace.npz"

    def test_load_prefers_literal_path(self, tiny_trace, tmp_path):
        # a file literally named "trace" (no suffix) must still load
        target = tiny_trace.save(tmp_path / "t.npz")
        exact = tmp_path / "trace"
        exact.write_bytes(target.read_bytes())
        assert len(Trace.load(exact)) == len(tiny_trace)

    def test_load_missing_file_mentions_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(tmp_path / "nope")


class TestMemoisedProperties:
    def test_histogram_matches_bincount_of_concat(self, tiny_trace):
        flat = np.concatenate(tiny_trace.rounds)
        np.testing.assert_array_equal(
            tiny_trace.node_histogram(8), np.bincount(flat, minlength=8)
        )

    def test_histogram_dtype_and_empty(self):
        hist = Trace(()).node_histogram(4)
        assert hist.dtype == np.int64
        np.testing.assert_array_equal(hist, np.zeros(4))

    def test_max_node_and_total_requests_cached(self, tiny_trace):
        assert tiny_trace.max_node == 4
        assert tiny_trace.total_requests == 9
        # memoized on the frozen instance after first access
        assert tiny_trace.__dict__["_max_node"] == 4
        assert tiny_trace.__dict__["_total_requests"] == 9


class TestGenerateTrace:
    def test_horizon_respected(self, line5):
        scenario = CommuterScenario(line5, period=4, sojourn=2)
        trace = generate_trace(scenario, 17, seed=0)
        assert len(trace) == 17

    def test_zero_horizon(self, line5):
        scenario = CommuterScenario(line5, period=4, sojourn=2)
        assert len(generate_trace(scenario, 0, seed=0)) == 0

    def test_negative_horizon_rejected(self, line5):
        scenario = CommuterScenario(line5, period=4, sojourn=2)
        with pytest.raises(ValueError, match="horizon"):
            generate_trace(scenario, -1, seed=0)

    def test_deterministic_given_seed(self, line5):
        scenario = CommuterScenario(line5, period=4, sojourn=2)
        a = generate_trace(scenario, 20, seed=5)
        b = generate_trace(scenario, 20, seed=5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
