"""Packaging for the flexible-server-allocation reproduction.

``pip install -e .`` makes ``import repro`` work without ``PYTHONPATH=src``
and installs the ``repro-experiments`` console script (the same entry point
as ``python -m repro.experiments``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).resolve().parent


def _version() -> str:
    """Read ``repro.__version__`` without importing the package."""
    text = (_HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


def _readme() -> str:
    path = _HERE / "README.md"
    return path.read_text(encoding="utf-8") if path.exists() else ""


setup(
    name="repro-flexible-server-allocation",
    version=_version(),
    description=(
        "Reproduction of 'On the Benefit of Virtualization: Strategies for "
        "Flexible Server Allocation' (NSDI 2011)"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest>=7", "pytest-cov>=4", "hypothesis>=6"],
        # the optional pulp/CBC solver backend for the ILP/LP policy family
        # (backend="pulp" / backend="auto"); scipy's HiGHS backend works
        # without it
        "opt": ["pulp>=2.7"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.__main__:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
