#!/usr/bin/env python
"""A latency-sensitive mobile gaming service during commuter hours.

The paper's second motivating scenario (§I): a mobile provider hosts a
gaming application; players commute downtown in the morning and back to
the suburbs in the evening, so both the *origin* and the *volume* of
requests swing over the day (the commuter scenario with dynamic load,
§V-A).

The example shows how ONTH breathes with the demand — allocating servers as
players fan out, deactivating them as the crowd contracts — and how a
steeper (quadratic) load function makes it provision more headroom, exactly
the behaviour of the paper's Figures 1 and 2.

Run:  python examples/mobile_gaming_commuter.py
"""

import numpy as np

from repro import (
    CommuterScenario,
    CostModel,
    OnTH,
    QuadraticLoad,
    erdos_renyi,
    generate_trace,
    simulate,
)


def sparkline(values, width=60) -> str:
    """Render a numeric series as a tiny ASCII chart."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([arr[a:b].mean() for a, b in zip(edges, edges[1:])])
    top = arr.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in arr)


def main() -> None:
    substrate = erdos_renyi(500, p=0.01, seed=3)
    scenario = CommuterScenario(substrate, period=12, sojourn=20, dynamic_load=True)
    trace = generate_trace(scenario, horizon=1000, seed=4)
    print(f"substrate: {substrate.n} nodes | demand: {scenario.scenario_name}, "
          f"peak {scenario.peak_access_points} access points")

    runs = {}
    for label, costs in (
        ("linear load", CostModel.paper_default()),
        ("quadratic load", CostModel.paper_default(load=QuadraticLoad())),
    ):
        runs[label] = simulate(substrate, OnTH(), trace, costs, seed=0)

    print("\nrequests/round:")
    print("  " + sparkline(trace.requests_per_round()))
    for label, run in runs.items():
        print(f"active servers ({label}):")
        print("  " + sparkline(run.n_active))

    print(f"\n{'load model':<18} {'total':>10} {'peak servers':>13} "
          f"{'mean servers':>13} {'creations':>10}")
    for label, run in runs.items():
        print(f"{label:<18} {run.total_cost:>10.1f} "
              f"{run.peak_active_servers:>13d} {run.mean_active_servers:>13.2f} "
              f"{run.total_creations:>10d}")

    lin = runs["linear load"]
    quad = runs["quadratic load"]
    print(f"\nsteeper load -> more servers: {quad.peak_active_servers} vs "
          f"{lin.peak_active_servers} at peak (the paper's Figure 1 effect)")


if __name__ == "__main__":
    main()
