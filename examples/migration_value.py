#!/usr/bin/env python
"""When is flexibility worth it? The paper's headline experiment.

Compares the best *static* provisioning with full future knowledge
(OFFSTAT) against the *optimal dynamic* strategy (OPT, the exact dynamic
program of §IV-A) while sweeping the demand's sojourn time λ — from frantic
(λ=1: the pattern shifts every round) to frozen (λ=horizon: a static
pattern).

The paper's finding (Figures 15-17): flexibility pays the most at
*moderate* dynamics — up to ~2x — and matters little at either extreme;
and the advantage is larger when migration is impossible (β > c), because
OPT then times its (expensive) server creations precisely.

Run:  python examples/migration_value.py
"""

from repro import (
    CommuterScenario,
    CostModel,
    OffStat,
    Opt,
    generate_trace,
    line,
    simulate,
)
from repro.util.rng import spawn_rngs

LAMBDAS = (1, 2, 5, 10, 20, 50, 100, 200)
HORIZON = 200
RUNS = 5


def ratio_for(costs: CostModel, sojourn: int, seed_base: int) -> float:
    ratios = []
    for rng in spawn_rngs(seed_base + sojourn, RUNS):
        substrate = line(5, seed=rng, unit_latency=False, latency_range=(5, 20))
        scenario = CommuterScenario(
            substrate, period=4, sojourn=sojourn, dynamic_load=True
        )
        trace = generate_trace(scenario, HORIZON, rng)
        offstat = simulate(substrate, OffStat(), trace, costs).total_cost
        opt_cost, _plan = Opt.solve(substrate, trace, costs)
        ratios.append(offstat / opt_cost)
    return sum(ratios) / len(ratios)


def main() -> None:
    print("OFFSTAT / OPT on 5-node line graphs, commuter dynamic load "
          f"(T=4, {HORIZON} rounds, {RUNS} runs per point)\n")
    print(f"{'λ':>5}  {'β<c (β=40, c=400)':>20}  {'β>c (β=400, c=40)':>20}")
    cheap = CostModel.paper_default()
    dear = CostModel.migration_expensive()
    for sojourn in LAMBDAS:
        r_cheap = ratio_for(cheap, sojourn, seed_base=100)
        r_dear = ratio_for(dear, sojourn, seed_base=900)
        print(f"{sojourn:>5}  {r_cheap:>20.3f}  {r_dear:>20.3f}")

    print(
        "\nreading the table: ratios near 1 mean static provisioning is"
        "\nessentially optimal (extreme dynamics: nothing to exploit;"
        "\nfrozen demand: nothing changes). The bump in the middle is the"
        "\npaper's 'benefit of virtualization' — and it is larger when"
        "\nmigration is impossible (β > c), where timing creations is all"
        "\nthat distinguishes OPT."
    )


if __name__ == "__main__":
    main()
