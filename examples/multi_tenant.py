#!/usr/bin/env python
"""Two tenants, one substrate — the §II-B request model in full.

The paper's requests are (access point, service) pairs: an infrastructure
provider hosts *several* virtualised services at once. This example runs
two tenants over the AT&T-like topology:

* "erp" — an SAP-style business app with time-zone demand, and
* "game" — a latency-sensitive game with commuter demand,

each with its own ONTH-managed fleet. The tenants couple through shared
node load: whenever their fleets co-locate, the node serves both tenants'
requests. Under the linear load model the coupling is cost-neutral
(attribution is proportional); switching the substrate to a quadratic load
makes co-location genuinely expensive — watch the load share rise.

Run:  python examples/multi_tenant.py
"""

import numpy as np

from repro import (
    CommuterScenario,
    CostModel,
    OnTH,
    QuadraticLoad,
    ServiceSpec,
    TimeZoneScenario,
    att_like_topology,
    generate_trace,
    simulate_services,
)

HORIZON = 400


def build_services(substrate):
    erp_demand = TimeZoneScenario(
        substrate, period=8, sojourn=25, hotspot_share=0.5, requests_per_round=8
    )
    game_demand = CommuterScenario(substrate, period=8, sojourn=15)
    return [
        ServiceSpec("erp", OnTH(), generate_trace(erp_demand, HORIZON, seed=31)),
        ServiceSpec("game", OnTH(), generate_trace(game_demand, HORIZON, seed=32)),
    ]


def main() -> None:
    substrate = att_like_topology()
    print(f"substrate: {substrate.name}, {substrate.n} routers\n")

    for label, costs in (
        ("linear node load", CostModel.paper_default()),
        ("quadratic node load", CostModel.paper_default(load=QuadraticLoad())),
    ):
        results = simulate_services(
            substrate, build_services(substrate), costs, seed=5
        )
        print(f"--- {label} ---")
        print(f"{'tenant':<8} {'total':>10} {'latency':>9} {'load':>8} "
              f"{'servers':>8} {'moves':>6}")
        for name, run in results.items():
            print(f"{name:<8} {run.total_cost:>10.1f} "
                  f"{run.latency_cost.sum():>9.1f} {run.load_cost.sum():>8.1f} "
                  f"{run.peak_active_servers:>8d} {run.total_migrations:>6d}")
        combined_load = sum(run.load_cost.sum() for run in results.values())
        print(f"combined load latency: {combined_load:.1f}\n")

    print("quadratic load punishes contention: the same fleets pay more in "
          "load\nwherever the tenants' servers share a node — the §II-B "
          "coupling that a\nper-tenant simulation cannot see.")


if __name__ == "__main__":
    main()
