#!/usr/bin/env python
"""A flash crowd hitting a steady service — composed demand regimes.

Demand is rarely one clean pattern. This example composes the library's
primitive scenarios into a realistic storm: a steady time-zone baseline,
then thirty rounds where a mobile crowd (the §II-D on/off model at full
correlation) piles on top of it, then calm again.

It shows three things:

* scenario *composition* (`PhasedScenario` + `OverlayScenario`),
* the demand metrics of `repro.analysis` quantifying each regime's
  dynamics (churn, spread, hotspot dwell), and
* how ONTH absorbs the shock — servers surge with the crowd and are
  deactivated (and eventually expire) afterwards.

Run:  python examples/flash_crowd.py
"""

import numpy as np

from repro import (
    CostModel,
    MobilityScenario,
    OnTH,
    OverlayScenario,
    PhasedScenario,
    TimeZoneScenario,
    erdos_renyi,
    generate_trace,
    simulate,
)
from repro.analysis import churn, hotspot_dwell, spatial_spread

QUIET_ROUNDS = 120
STORM_ROUNDS = 30


def main() -> None:
    substrate = erdos_renyi(150, p=0.02, seed=21)
    baseline = TimeZoneScenario(
        substrate, period=6, sojourn=20, hotspot_share=0.5, requests_per_round=8
    )
    crowd = MobilityScenario(
        substrate, n_users=60, mean_sojourn=5.0, correlation=0.9,
        attractor_period=10,
    )
    storm = OverlayScenario([baseline, crowd])
    scenario = PhasedScenario(
        [(QUIET_ROUNDS, baseline), (STORM_ROUNDS, storm), (QUIET_ROUNDS, baseline)]
    )
    horizon = 2 * QUIET_ROUNDS + STORM_ROUNDS
    trace = generate_trace(scenario, horizon, seed=8)
    print(f"substrate: {substrate.n} nodes | demand: {scenario.scenario_name}")

    quiet = trace.window(0, QUIET_ROUNDS)
    surge = trace.window(QUIET_ROUNDS, QUIET_ROUNDS + STORM_ROUNDS)
    print(f"\n{'regime':<10} {'req/round':>10} {'churn':>7} {'spread':>7} {'dwell':>6}")
    for label, part in (("quiet", quiet), ("storm", surge)):
        volume = part.total_requests / len(part)
        print(f"{label:<10} {volume:>10.1f} {churn(part, substrate.n):>7.3f} "
              f"{spatial_spread(part, substrate):>7.2f} {hotspot_dwell(part):>6.1f}")

    result = simulate(substrate, OnTH(), trace, CostModel.paper_default(), seed=0)

    def window_stats(lo, hi):
        span = slice(lo, hi)
        return (
            result.n_active[span].max(),
            result.access_cost[span].mean(),
            int(result.creations[span].sum() + result.migrations[span].sum()),
        )

    print(f"\n{'window':<14} {'peak servers':>13} {'avg access':>11} {'changes':>8}")
    for label, (lo, hi) in (
        ("before storm", (0, QUIET_ROUNDS)),
        ("storm", (QUIET_ROUNDS, QUIET_ROUNDS + STORM_ROUNDS)),
        ("after storm", (QUIET_ROUNDS + STORM_ROUNDS, horizon)),
    ):
        peak, access, changes = window_stats(lo, hi)
        print(f"{label:<14} {peak:>13d} {access:>11.1f} {changes:>8d}")

    before_peak, _a, _c = window_stats(0, QUIET_ROUNDS)
    storm_peak, _a, _c = window_stats(QUIET_ROUNDS, QUIET_ROUNDS + STORM_ROUNDS)
    tail_servers = int(result.n_active[-20:].max())
    print(f"\nONTH surged from {before_peak} to {storm_peak} active servers and "
          f"settled back to {tail_servers} — capacity follows the crowd.")


if __name__ == "__main__":
    main()
