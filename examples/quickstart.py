#!/usr/bin/env python
"""Quickstart: run one adaptive allocation strategy and read its ledger.

Builds a 200-node random substrate, generates a commuter-style demand trace
(requests fan out from the network center and back, §V-A of the paper), and
runs the paper's best online strategy ONTH against a static single server.

Run:  python examples/quickstart.py
"""

from repro import (
    CommuterScenario,
    Configuration,
    CostModel,
    OnTH,
    StaticPolicy,
    erdos_renyi,
    generate_trace,
    simulate,
)


def main() -> None:
    # 1. The substrate network: 200 nodes, 1% Erdős–Rényi, T1/T2 links.
    substrate = erdos_renyi(200, p=0.01, seed=42)
    print(f"substrate: {substrate.name} with {substrate.n} nodes, "
          f"{substrate.n_links} links, center at node {substrate.center}")

    # 2. The demand: commuters moving between downtown and the suburbs.
    scenario = CommuterScenario(substrate, sojourn=10, dynamic_load=True)
    trace = generate_trace(scenario, horizon=500, seed=7)
    print(f"trace: {len(trace)} rounds, {trace.total_requests} requests, "
          f"peak {trace.max_requests_per_round}/round")

    # 3. The cost model: β=40 (migration), c=400 (creation), Ra=2.5, Ri=0.5.
    costs = CostModel.paper_default()

    # 4. Run ONTH — the paper's two-threshold online algorithm.
    onth = simulate(substrate, OnTH(), trace, costs, seed=0)
    print("\nONTH (adaptive):")
    print(f"  total cost      {onth.total_cost:12.1f}")
    print(f"  access cost     {onth.breakdown.access:12.1f}")
    print(f"  running cost    {onth.breakdown.running:12.1f}")
    print(f"  migration cost  {onth.breakdown.migration:12.1f}"
          f"  ({onth.total_migrations} migrations)")
    print(f"  creation cost   {onth.breakdown.creation:12.1f}"
          f"  ({onth.total_creations} creations)")
    print(f"  servers         peak {onth.peak_active_servers}, "
          f"mean {onth.mean_active_servers:.2f}")

    # 5. Compare with a frozen single server at the network center.
    static = simulate(
        substrate,
        StaticPolicy(Configuration.single(substrate.center)),
        trace,
        costs,
    )
    print("\nstatic single server at the center:")
    print(f"  total cost      {static.total_cost:12.1f}")

    advantage = static.total_cost / onth.total_cost
    print(f"\nflexibility advantage: static / ONTH = {advantage:.2f}x")


if __name__ == "__main__":
    main()
