#!/usr/bin/env python
"""Declarative experiments: describe a run as data, execute it anywhere.

The spec API (``repro.api``) separates *what* an experiment is from *how*
it runs. This example

1. builds an :class:`ExperimentSpec` naming registered components
   ("onth", "commuter", "erdos_renyi") instead of importing their classes,
2. round-trips the spec through JSON — the exact run is reproducible from a
   text blob (cache keys, experiment manifests, issue reports),
3. sweeps a parameter with ``run_sweep`` serially and on a process pool,
   verifying the results are bit-identical,
4. shows the matching one-liner CLI invocation,
5. expresses a *derived* result — the ONTH/OPT competitive ratio of
   Figure 11 — as a :class:`MetricSpec` instead of custom code,
6. re-runs a sweep through a spec-keyed :class:`ResultCache`, loading the
   second invocation from disk without simulating anything, and
7. splits one sweep across two independent "processes" with
   ``run_sweep(..., shard=(i, n))`` — each fills a disjoint subset of the
   per-point cache entries, and the assembly pass reproduces the serial
   result bit for bit without simulating. The same cache makes interrupted
   sweeps resumable: only missing points are recomputed, and
8. attaches a :class:`ReplicationSpec` for confidence-aware replication:
   per-point confidence intervals (error bars / shaded bands), adaptive
   top-ups until every point's CI meets a halfwidth target, and an
   error-band figure rendered straight to the terminal, and
9. adds a :class:`ComparisonSpec` for *paired* policy-vs-policy statistics
   on common random numbers: the shared trace noise cancels out of the
   per-replicate differences, so paired intervals are several times
   tighter than marginal ones — and a paired adaptive sweep settles the
   same ordering with a fraction of the replicates, and
10. runs the same sweep through a :class:`QueueBackend` — a single-file
    SQLite work queue that any number of worker processes may drain
    (``python -m repro.experiments worker``); with zero external workers
    the backend drains its own queue, and either way the result is
    bit-identical to serial, and
11. swaps production workloads into the same specs: a ``replay`` scenario
    scores the policies on an external request log (any CSV/JSONL with a
    node column, deterministically mapped onto the substrate, cache keys
    tracking the file's content hash), and a ``streaming`` wrapper runs
    any scenario lazily in O(round) memory — the million-round switch —
    while staying bit-identical to its materialised twin, and
12. refines a paired sweep where the *paired* CI straddles its null —
    the policies' crossing region — with the warm cache re-simulating
    only the appended midpoints, then renders the sweep as a publishable
    EXPERIMENTS.md plus a self-contained repro bundle that replays and
    re-renders byte-identically, and
13. pits the heuristics against the optimizer-backed ``ilp`` policy — a
    periodic re-solve placement program whose solver knobs (epoch,
    window, LP relaxation, backend) are ordinary spec parameters — with
    a paired ratio comparison on common random numbers, and checks the
    exact tiny-instance ``milp-opt`` optimum agrees with the OPT dynamic
    program on a small line instance.

Run:  python examples/declarative_specs.py
"""

import json
import tempfile

from repro import (
    ComparisonSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ProcessPoolBackend,
    QueueBackend,
    ReplicationSpec,
    ResultCache,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    refine_sweep,
    run_experiment,
    run_sweep,
)
from repro.experiments.plotting import render_comparison_chart, render_figure_chart
from repro.experiments.report import (
    ReportSection,
    load_bundle,
    render_report,
    write_bundle,
)


def main() -> None:
    # 1. A run described purely as data: no classes, just registered names.
    experiment = ExperimentSpec(
        topology=TopologySpec("erdos_renyi", {"n": 120}),
        scenario=ScenarioSpec("commuter", {"sojourn": 10}),
        policies=(
            PolicySpec("onth", label="ONTH"),
            PolicySpec("onbr-dyn", label="ONBR-dyn"),
            PolicySpec("offstat", label="OFFSTAT"),
        ),
        horizon=200,
        seed=7,
    )
    outcome = run_experiment(experiment)
    print("single run, total cost per policy:")
    for label, cost in outcome.total_costs.items():
        print(f"  {label:<10} {cost:10.1f}")

    # 2. Specs serialise to JSON-safe dicts and back without loss.
    blob = json.dumps(experiment.to_dict())
    assert ExperimentSpec.from_dict(json.loads(blob)) == experiment
    print(f"\nspec JSON round-trip ok ({len(blob)} bytes)")

    # 3. Sweep the network size; the process pool preserves per-replicate
    #    seeds, so parallel results are bit-identical to serial ones.
    sweep = SweepSpec(
        experiment=experiment,
        parameter="topology.n",
        values=(60, 120, 240),
        runs=3,
        seed=7,
        figure="example",
        x_label="network size",
    )
    serial = run_sweep(sweep)
    parallel = run_sweep(sweep, backend=ProcessPoolBackend(4))
    assert serial.series == parallel.series and serial.errors == parallel.errors
    print("\nsize sweep (serial == 4-worker pool, bit-identical):")
    for name in serial.series_names:
        values = ", ".join(f"{v:9.1f}" for v in serial.y(name))
        print(f"  {name:<10} {values}")

    # 4. The same sweep from the command line, no code required:
    print(
        "\nequivalent CLI:\n"
        "  python -m repro.experiments run --policy onth --policy onbr-dyn \\\n"
        "      --policy offstat --scenario commuter:sojourn=10 \\\n"
        "      --topology erdos_renyi:n=120 --horizon 200 \\\n"
        "      --sweep topology.n=60,120,240 --runs 3 --workers 4"
    )

    # 5. Derived metrics as data: the ONTH/OPT competitive ratio on a line
    #    graph (the shape of the paper's Figure 11), swept over λ. The
    #    "cost_ratio_vs" metric solves the exact offline optimum per
    #    replicate — no closure, the whole figure is this JSON-able spec.
    ratio_sweep = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec(
                "line",
                {"n": 5, "unit_latency": False, "latency_range": (5.0, 20.0)},
            ),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=60,
            metrics=(MetricSpec("cost_ratio_vs", {"reference": "OPT"}),),
        ),
        parameter="scenario.sojourn",
        values=(2, 5, 15),
        runs=3,
        seed=7,
        figure="example-ratio",
        x_label="λ",
    )
    assert SweepSpec.from_dict(json.loads(json.dumps(ratio_sweep.to_dict())))
    ratios = run_sweep(ratio_sweep)
    print("\nONTH/OPT ratio vs λ (a MetricSpec, not a closure):")
    print("  " + ", ".join(f"λ={x}: {r:.3f}"
                           for x, r in zip(ratios.x_values, ratios.y("ONTH"))))
    print(
        "equivalent CLI:\n"
        "  python -m repro.experiments run --policy onth \\\n"
        "      --topology line:n=5,unit_latency=false --scenario commuter:period=4 \\\n"
        "      --metric cost_ratio_vs:reference=OPT --sweep scenario.sojourn=2,5,15"
    )

    # 6. Because the spec is the complete input, it doubles as a cache key:
    #    the second run_sweep loads the stored FigureResult from disk.
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        first = run_sweep(ratio_sweep, cache=cache)     # simulates + stores
        second = run_sweep(ratio_sweep, cache=cache)    # pure disk read
        assert second == first and cache.hits == 1
        print(
            f"\ncached re-run identical (1 store, 1 hit under {root});\n"
            "  CLI: ... --cache-dir ~/.cache/repro-experiments"
        )

    # 7. Caching is per sweep *point*, which makes sweeps shardable and
    #    resumable: shard (i, n) computes every n-th point into the shared
    #    cache dir, and any later run assembles the full figure from the
    #    warm entries — bit-identical to the serial run. An interrupted
    #    sweep resumes the same way, recomputing only its missing points.
    with tempfile.TemporaryDirectory() as root:
        for index in range(2):                          # two CI jobs, say
            run_sweep(ratio_sweep, cache=ResultCache(root), shard=(index, 2))
        assembler = ResultCache(root)
        assembled = run_sweep(ratio_sweep, cache=assembler)
        assert assembled == first and assembler.point_stores == 0
        print(
            "sharded 2-way + assembled from the warm cache, bit-identical\n"
            "  CLI: ... --cache-dir DIR --shard 1/2   (then 2/2, then assemble)"
        )

    # 8. Confidence-aware replication: every sweep point tops itself up —
    #    cache-first, marginal seeds only — until the 95% CI of every series
    #    is within ±10% of its mean, or the point hits max_runs. Low-variance
    #    points stop early, so per-point n varies; the result carries
    #    mean/stderr/CI/n per point and renders with shaded error bands.
    adaptive = SweepSpec(
        experiment=ratio_sweep.experiment,
        parameter=ratio_sweep.parameter,
        values=ratio_sweep.values,
        runs=3,
        seed=7,
        figure="example-ci",
        x_label="λ",
        replication=ReplicationSpec(
            ci_level=0.95, target_halfwidth=0.10, relative=True, max_runs=12,
        ),
    )
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        confident = run_sweep(adaptive, cache=cache)
        print("\nadaptive replication (CI within ±10% of the mean):")
        for x, summary in zip(
            confident.x_values, confident.point_summaries("ONTH")
        ):
            print(f"  λ={x:<3} {summary}")
        print(render_figure_chart(confident, width=56, height=12))
        rerun = ResultCache(root)
        assert run_sweep(adaptive, cache=rerun) == confident
        assert rerun.point_stores == 0 and rerun.extension_stores == 0
        print(
            "warm re-run simulated zero replicates;\n"
            "  CLI: ... --ci 0.95 --target-halfwidth 10% --max-runs 12"
        )

    # 9. Paired comparisons on common random numbers: the policies of one
    #    sweep point share each replicate's trace, so comparing them via the
    #    per-replicate *difference* cancels the shared noise. The same
    #    adaptive sweep, retargeted at the paired halfwidth, settles the
    #    ONTH-vs-OFFSTAT ordering with far fewer replicates than the
    #    marginal criterion needs.
    duel = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 6}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("offstat", label="OFFSTAT"),
            ),
            horizon=60,
        ),
        parameter="scenario.sojourn",
        values=(2, 5, 9),
        runs=2,
        seed=3,
        figure="example-paired",
        x_label="λ",
        replication=ReplicationSpec(target_halfwidth=200.0, max_runs=16),
    )
    marginal = run_sweep(duel)
    paired = run_sweep(
        duel, comparison=ComparisonSpec(baseline="OFFSTAT")
    )
    print("\npaired comparison vs OFFSTAT (common random numbers):")
    for x, summary in zip(
        paired.x_values, paired.comparison_for("ONTH").summaries()
    ):
        settled = "settled" if summary.decisive else "open"
        print(f"  λ={x:<3} {summary}  [{settled}]")
    print(render_comparison_chart(paired, width=56, height=10))
    saved = 1 - sum(paired.counts) / sum(marginal.counts)
    print(
        f"replicates: marginal {sum(marginal.counts)} vs paired "
        f"{sum(paired.counts)} ({saved:.0%} saved, same ordering);\n"
        "  CLI: ... --compare OFFSTAT --target-halfwidth 200 --max-runs 16"
    )

    # 10. The same sweep through a shared work queue. The backend publishes
    #     each replicate as a task on a single SQLite file; any number of
    #     `python -m repro.experiments worker --queue ... --cache-dir ...`
    #     processes (on any machine sharing the filesystem) may pick them
    #     up, and killed workers' leases expire and re-serve. With no
    #     external workers — as here — the backend drains its own queue,
    #     so the queue admits helpers without requiring them. Tasks carry
    #     their pre-spawned seeds, so the answer is bit-identical to
    #     serial no matter who executes what.
    with tempfile.TemporaryDirectory() as root:
        queued = run_sweep(
            sweep, backend=QueueBackend(f"{root}/queue.db", chunk=2)
        )
        assert queued == serial
        print(
            "\nqueue-backed sweep matches serial bit for bit;\n"
            "  CLI: ... enqueue/worker/serve --queue sweeps.db "
            "--cache-dir cache/"
        )

    # 11. Production workloads through the identical machinery. A `replay`
    #     scenario turns an external request log into rounds (here a tiny
    #     CSV; `python -m repro.experiments trace convert` preconverts big
    #     ones to .npz) with node names hashed onto the substrate, and a
    #     `streaming` wrapper generates any scenario's rounds lazily — the
    #     horizon stops being a memory limit, and the ledgers match the
    #     materialised run bit for bit.
    with tempfile.TemporaryDirectory() as root:
        log = f"{root}/requests.csv"
        with open(log, "w", encoding="utf-8") as handle:
            handle.write("round,node\n")
            handle.writelines(
                f"{t},web-{t % 3}\n" for t in range(30) for _ in range(1 + t % 4)
            )
        replayed = run_experiment(
            ExperimentSpec(
                topology=TopologySpec("line", {"n": 5}),
                scenario=ScenarioSpec("replay", {"path": log}),
                policies=(PolicySpec("onth"),),
                horizon=30,
            )
        )
        lazy, eager = (
            run_experiment(
                ExperimentSpec(
                    topology=TopologySpec("line", {"n": 5}),
                    scenario=ScenarioSpec("streaming", {
                        "scenario": "commuter",
                        "params": {"period": 6, "sojourn": 3},
                        "materialize": materialize,
                    }),
                    policies=(PolicySpec("onth"),),
                    horizon=400,
                    seed=7,
                )
            )
            for materialize in (False, True)
        )
        assert lazy.results["ONTH"].total_cost == eager.results["ONTH"].total_cost
        print(
            "\nproduction workloads: replayed log cost "
            f"{replayed.results['ONTH'].total_cost:.0f}; streaming == "
            "materialised commuter run at horizon 400;\n"
            "  CLI: ... run --scenario replay:path=requests.csv  (or "
            "--scenario streaming:scenario=commuter,sojourn=3)"
        )

    # 12. Paired-CI-aware refinement + a publishable report. Under a
    #     ComparisonSpec, refine_sweep bisects exactly the axis intervals
    #     whose *paired* CI straddles its null (or whose paired mean
    #     crosses it) — the crossing regions the paper's figures are
    #     about. Midpoints are appended, so old points keep their seeds
    #     and per-point cache entries: a pass over the warm cache
    #     simulates only the new points. render_report/write_bundle then
    #     turn the sweep into EXPERIMENTS.md plus a repro bundle whose
    #     specs replay and re-render byte-identically.
    crossing = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 6}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("onbr", label="ONBR"),
            ),
            horizon=60,
        ),
        parameter="scenario.sojourn",
        values=(2, 9),
        runs=2,
        seed=2,
        figure="example-refine",
        title="ONTH vs ONBR near their crossing",
        x_label="λ",
        comparison=ComparisonSpec(baseline="ONBR"),
    )
    with tempfile.TemporaryDirectory() as root:
        cache_dir = f"{root}/cache"
        base = run_sweep(crossing, cache=ResultCache(cache_dir))
        refined_spec, _ = refine_sweep(
            crossing, base, cache=ResultCache(cache_dir)
        )
        added = sorted(set(refined_spec.values) - set(crossing.values))
        print(
            f"\npaired refinement bisected at λ={added} (the paired CI "
            "straddles 0 there); the warm cache re-simulated only those "
            "midpoints"
        )
        final = run_sweep(refined_spec, cache=ResultCache(cache_dir))
        sections = [ReportSection("crossing", refined_spec, final)]
        text = render_report(sections, cache=ResultCache(cache_dir))
        write_bundle(
            f"{root}/bundle", sections,
            cache=ResultCache(cache_dir), report_text=text,
        )
        _manifest, bundled = load_bundle(f"{root}/bundle")
        [(key, replay_spec)] = bundled
        replayed = run_sweep(replay_spec, cache=ResultCache(cache_dir))
        again = render_report(
            [ReportSection(key, replay_spec, replayed)],
            cache=ResultCache(cache_dir),
        )
        assert again == text
        print(
            f"report: {len(text.splitlines())} markdown lines; bundle "
            "replayed + re-rendered byte-identically;\n"
            "  CLI: ... report fig03 --compare ONTH --cache-dir cache/ "
            "--out EXPERIMENTS.md --bundle bundle/  →  "
            "run --from-bundle bundle/"
        )

    # 13. Heuristics vs the optimizer. The "ilp" policy re-solves a
    #     placement program every `epoch` rounds (scipy's bundled HiGHS;
    #     relax=True rounds the LP relaxation instead), and its solver
    #     knobs are ordinary spec parameters — so pitting the threshold
    #     heuristics against it is just another paired-ratio sweep on
    #     common random numbers. "milp-opt" is the exact tiny-instance
    #     optimum the differential test harness pins against OPT.
    showdown = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 6}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("ilp", {"epoch": 10}, label="ILP"),
                PolicySpec("ilp", {"epoch": 10, "relax": True}, label="LP"),
            ),
            horizon=60,
        ),
        parameter="scenario.sojourn",
        values=(2, 6),
        runs=2,
        seed=5,
        figure="example-optim",
        x_label="λ",
        comparison=ComparisonSpec(baseline="ILP", mode="ratio"),
    )
    versus = run_sweep(showdown)
    print("\nheuristic/ILP paired cost ratios (shared traces):")
    for contrast in ("ONTH", "LP"):
        values = versus.comparison_for(contrast).values
        print("  " + f"{contrast:<5}"
              + ", ".join(f"λ={x}: {v:.3f}"
                          for x, v in zip(versus.x_values, values)))
    exact = run_experiment(
        ExperimentSpec(
            topology=TopologySpec("line", {"n": 3}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("milp-opt", label="MILP-OPT"),),
            horizon=8,
            metrics=(MetricSpec("cost_ratio_vs", {"reference": "OPT"}),),
            seed=11,
        )
    )
    ratio = exact.series["MILP-OPT"]
    assert abs(ratio - 1.0) < 1e-9
    print(
        f"exact MILP optimum / OPT dynamic program = {ratio:.6f} "
        "on a 3-node line;\n"
        "  CLI: ... run --policy onth --policy ilp:epoch=10,label=ILP \\\n"
        "      --compare ILP --compare-mode ratio"
    )


if __name__ == "__main__":
    main()
