#!/usr/bin/env python
"""An SAP application in the cloud, following the sun around an ISP.

The paper's first motivating scenario (§I): a business application accessed
by users whose working hours rotate through time zones. Demand concentrates
on one region at a time (the time-zone scenario of §V-A, p = 50% hotspot
share) over an AT&T-like ISP topology with realistic latencies.

The example contrasts three operating modes on the same demand:

* OFFSTAT — provision a fixed fleet offline (no flexibility),
* ONTH    — adapt online with migrations and activations,
* ONBR    — the simpler best-response baseline,

and shows where ONTH's servers travel over one simulated day.

Run:  python examples/sap_timezones.py
"""

import numpy as np

from repro import (
    CostModel,
    OffStat,
    OnBR,
    OnTH,
    TimeZoneScenario,
    att_like_topology,
    generate_trace,
    simulate,
)


def main() -> None:
    substrate = att_like_topology()
    print(f"substrate: {substrate.name}, {substrate.n} routers "
          f"({substrate.access_points.size} access routers), "
          f"diameter {substrate.diameter:.1f} ms")

    scenario = TimeZoneScenario(
        substrate, period=8, sojourn=25, hotspot_share=0.5, requests_per_round=10
    )
    trace = generate_trace(scenario, horizon=600, seed=11)
    print(f"demand: {scenario.scenario_name}, day = {scenario.day_length} rounds")

    costs = CostModel(migration=40, creation=400, run_active=2.5, run_inactive=0.5)

    offstat = OffStat()
    results = {
        "OFFSTAT (static, offline)": simulate(substrate, offstat, trace, costs),
        "ONTH (adaptive)": simulate(substrate, OnTH(), trace, costs, seed=0),
        "ONBR (adaptive)": simulate(substrate, OnBR(), trace, costs, seed=0),
    }

    print(f"\n{'strategy':<28} {'total':>10} {'access':>10} "
          f"{'running':>9} {'moves':>6} {'servers':>8}")
    for name, run in results.items():
        bd = run.breakdown
        print(f"{name:<28} {run.total_cost:>10.1f} {bd.access:>10.1f} "
              f"{bd.running:>9.1f} {run.total_migrations:>6d} "
              f"{run.peak_active_servers:>8d}")

    print(f"\nOFFSTAT chose a fleet of {offstat.kopt} static servers.")

    onth = results["ONTH (adaptive)"]
    moves = np.nonzero(onth.migrations)[0]
    if moves.size:
        preview = ", ".join(str(int(t)) for t in moves[:10])
        print(f"ONTH migrated in rounds: {preview}"
              + (" …" if moves.size > 10 else ""))
        per_period = scenario.sojourn * 1.0
        print(f"(hotspot relocates every {scenario.sojourn} rounds — "
              f"migrations track the sun)")

    ratio = results["ONTH (adaptive)"].total_cost / results[
        "OFFSTAT (static, offline)"
    ].total_cost
    print(f"\nONTH / OFFSTAT = {ratio:.2f} "
          f"(paper's AS-7018 run: < 2 despite ONTH being online)")


if __name__ == "__main__":
    main()
