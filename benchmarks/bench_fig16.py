"""Figure 16: OFFSTAT/OPT ratio vs λ, commuter static load.

Paper finding: β<c fluctuates around ≈1.2 and drops to 1 for static access
patterns; β>c reaches toward 2 at intermediate λ.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig16")
def test_fig16_ratio_static(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure16(runs=runs))
    figure_report(result)

    for name in ("β<c", "β>c"):
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)
        assert ys[-1] <= 1.1  # static pattern: ratio returns to ~1
    assert sum(result.y("β>c")) >= sum(result.y("β<c"))
