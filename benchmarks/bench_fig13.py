"""Figure 13: absolute OFFSTAT and OPT costs vs λ (β = 40 < c = 400).

Paper caption: commuter dynamic load, 200 rounds, 5-node network, T = 4,
10 runs. Expected shape: costs fall as the system becomes less dynamic,
and OFFSTAT ≥ OPT everywhere.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig13")
def test_fig13_absolute_costs(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure13(runs=runs))
    figure_report(result)

    offstat, opt = result.y("OFFSTAT"), result.y("OPT")
    assert all(o >= p - 1e-9 for o, p in zip(offstat, opt))
    # λ = horizon is a static pattern: cheapest point for OPT
    assert opt[-1] == min(opt)
