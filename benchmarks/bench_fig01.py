"""Figure 1: exemplary ONTH execution, commuter scenario with dynamic load.

Paper caption: 1000 rounds, T = 14, network size 1000, λ = 20; linear and
quadratic load functions. Expected shape: the number of active servers
tracks the demand fan-out, and the quadratic load model allocates more
servers than the linear one.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig01")
def test_fig01_onth_trajectory_dynamic(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(n=1000, period=14, sojourn=20, horizon=1000, sample_every=25)
    else:
        params = dict(n=300, period=10, sojourn=10, horizon=400, sample_every=10)
    result = run_once(benchmark, lambda: figures.figure01(**params))
    figure_report(result)

    linear = result.series["servers (linear load)"]
    quadratic = result.series["servers (quadratic load)"]
    demand = result.series["requests/round"]
    # shape: quadratic load provisions at least as many servers at peak
    assert max(quadratic) >= max(linear)
    # shape: server count rises above its start as the demand fans out
    assert max(linear) > linear[0]
    # shape: demand actually swings (dynamic load)
    assert max(demand) > min(demand)
