"""Figure 19: OFFSTAT/OPT ratio vs T, commuter static load (as Figure 18)."""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig19")
def test_fig19_ratio_vs_period_static(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure19(runs=runs))
    figure_report(result)

    # On 5-node graphs the fan-out saturates at T = 4 (2^(T/2) = 4 <= 5
    # access points); the paper's "ratio grows with T" claim is checked on
    # the pre-saturation prefix, after which the pattern stops widening.
    pre_saturation = [i for i, T in enumerate(result.x_values) if 2 ** (T // 2) <= 5]
    for name in ("β<c", "β>c"):
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)
        if len(pre_saturation) >= 2:
            assert ys[pre_saturation[-1]] >= ys[pre_saturation[0]] - 0.05
