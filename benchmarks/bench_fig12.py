"""Figure 12: OFFSTAT's fleet-size selection curve.

The paper's illustration of how the static baseline determines kopt: total
cost as a function of the number of (greedily placed) static servers, with
the minimum at kopt. Expected shape: a dip — going from 1 server to kopt
reduces cost, and oversizing raises it again via running costs.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig12")
def test_fig12_offstat_cost_curve(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(n=200, horizon=500, sojourn=10, max_servers=14)
    else:
        params = dict(n=100, horizon=300, sojourn=10, max_servers=10)
    result = run_once(benchmark, lambda: figures.figure12(**params))
    figure_report(result)

    curve = np.asarray(result.y("total cost"))
    kopt = int(np.argmin(curve)) + 1
    assert curve.min() < curve[0]          # more than one server pays off
    assert curve[-1] > curve.min()         # oversizing hurts
    assert f"kopt = {kopt}" in result.notes
