"""Figure 7: cost vs T in the commuter scenario with static load.

Paper caption: runtime 600 rounds, λ = 20, network size 1000, 10 runs.
Expected shape: cost increases slightly with T (larger request horizon),
and ONTH yields the best performance throughout.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig07")
def test_fig07_cost_vs_period(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(periods=(4, 6, 8, 10, 12, 14, 16), n=1000, horizon=600,
                      sojourn=20, runs=10)
    else:
        params = dict(periods=(4, 8, 12), n=300, horizon=300, sojourn=10, runs=3)
    result = run_once(benchmark, lambda: figures.figure07(**params))
    figure_report(result)

    assert sum(result.y("ONTH")) <= sum(result.y("ONBR-fixed")) * 1.05
    # cost rises with T (the volume 2^(T/2) grows with the day length)
    for name in result.series_names:
        assert result.y(name)[-1] > result.y(name)[0]
