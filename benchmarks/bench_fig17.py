"""Figure 17: OFFSTAT/OPT ratio vs λ, time zone scenario (3 requests/round).

Paper finding: the ratio rises quickly already for small λ, then declines
roughly linearly with slower dynamics; the β<c and β>c variants behave
similarly (highly correlated demand makes creating and migrating almost
interchangeable).
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig17")
def test_fig17_ratio_timezones(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure17(runs=runs))
    figure_report(result)

    for name in ("β<c", "β>c"):
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)
        # decline toward low dynamics: the λ=horizon point is below the peak
        assert ys[-1] < max(ys)
