"""Figure 18: OFFSTAT/OPT ratio vs T, commuter dynamic load (λ = 10).

Paper finding: a larger request horizon (larger T) increases both absolute
costs and the benefit of migration; β>c variants typically benefit more.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig18")
def test_fig18_ratio_vs_period_dynamic(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure18(runs=runs))
    figure_report(result)

    pre_saturation = [i for i, T in enumerate(result.x_values) if 2 ** (T // 2) <= 5]
    for name in ("β<c", "β>c"):
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)
        if len(pre_saturation) >= 2:
            # ratio grows (or holds) with T until the fan-out saturates
            assert ys[pre_saturation[-1]] >= ys[pre_saturation[0]] - 0.05
    assert sum(result.y("β>c")) >= sum(result.y("β<c"))
