"""Figure 5: like Figure 3 but for the time zone scenario (p = 50%)."""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig05")
def test_fig05_cost_vs_size_timezones(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(sizes=(100, 200, 400, 700, 1000), horizon=500, sojourn=10, runs=5)
    else:
        params = dict(sizes=(50, 100, 200, 400), horizon=300, sojourn=10, runs=3)
    result = run_once(benchmark, lambda: figures.figure05(**params))
    figure_report(result)

    assert sum(result.y("ONTH")) <= sum(result.y("ONBR-fixed")) * 1.05
    for name in result.series_names:
        assert result.y(name)[-1] > result.y(name)[0]
