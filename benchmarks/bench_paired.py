#!/usr/bin/env python
"""Seed/perf regression harness for paired adaptive replication.

Runs the fig03 smoke scenario twice under the same adaptive replication
spec — once stopping on the *marginal* per-series CI halfwidths, once on
the *paired* contrast-vs-ONTH halfwidths (``ComparisonSpec``) — and
records how many replicates each needed to reach the fixed target. Common
random numbers make the paired intervals tighten much faster, so paired
must stop with at most as many total replicates as marginal, with the
identical per-point policy ordering; the script exits non-zero otherwise,
making it a CI gate against seed-layout or estimator regressions.

Usage::

    python benchmarks/bench_paired.py [OUTPUT.json]

Writes ``BENCH_paired.json`` (or OUTPUT) with the per-mode replicate
counts and the measured savings.
"""

from __future__ import annotations

import json
import sys
import time

from repro.api.specs import ComparisonSpec, ReplicationSpec
from repro.experiments import figures

#: The fig03 smoke parameterisation (the golden config of the test suite).
FIG03_SMOKE = dict(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)

#: An absolute CI halfwidth target between the typical paired and marginal
#: halfwidths at smoke scale, so the two stopping rules separate.
REPLICATION = ReplicationSpec(target_halfwidth=150.0, max_runs=12, batch=1)

#: ONTH is the baseline: the paper's claims are all "X vs ONTH"-shaped.
COMPARISON = ComparisonSpec(baseline="ONTH")


def _ordering(result) -> "list[tuple[str, ...]]":
    """The per-point policy ordering (cheapest first) of a figure result."""
    return [
        tuple(sorted(result.series_names,
                     key=lambda name: result.series[name][i]))
        for i in range(len(result.x_values))
    ]


def run() -> dict:
    started = time.perf_counter()
    marginal = figures.figure03(**FIG03_SMOKE, replication=REPLICATION)
    marginal_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    paired = figures.figure03(
        **FIG03_SMOKE, replication=REPLICATION, comparison=COMPARISON
    )
    paired_elapsed = time.perf_counter() - started

    marginal_total = sum(marginal.counts)
    paired_total = sum(paired.counts)
    return {
        "scenario": "fig03-smoke",
        "params": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in FIG03_SMOKE.items()},
        "replication": REPLICATION.to_dict(),
        "comparison": COMPARISON.to_dict(),
        "marginal": {
            "counts": [int(n) for n in marginal.counts],
            "total_replicates": marginal_total,
            "elapsed_seconds": round(marginal_elapsed, 3),
        },
        "paired": {
            "counts": [int(n) for n in paired.counts],
            "total_replicates": paired_total,
            "elapsed_seconds": round(paired_elapsed, 3),
        },
        "savings": round(1.0 - paired_total / marginal_total, 4),
        "orderings_identical": _ordering(marginal) == _ordering(paired),
        "paired_leq_marginal": paired_total <= marginal_total,
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_paired.json"
    payload = run()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"paired {payload['paired']['total_replicates']} vs marginal "
        f"{payload['marginal']['total_replicates']} replicates "
        f"({payload['savings']:.0%} saved) -> {output}"
    )
    if not payload["paired_leq_marginal"]:
        print("FAIL: paired adaptive sweep needed MORE replicates than "
              "marginal", file=sys.stderr)
        return 1
    if not payload["orderings_identical"]:
        print("FAIL: paired and marginal sweeps disagree on the policy "
              "ordering", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
