"""Extension benchmarks: the algorithms beyond the paper's evaluation.

* online shoot-out — ONTH / ONBR / ONCONF / WFA vs OPT on the line-graph
  instances of Figure 11 (WFA is the §VI metrical-task-system baseline);
* beam-search planner — the §IV-B "sampling heuristic" against exact OPT
  (quality) and on an OPT-infeasible 200-node substrate (reach).
"""

import numpy as np
import pytest

from conftest import run_once
from repro.algorithms import BeamOpt, OffStat, OnBR, OnConf, OnTH, Opt, WorkFunctionPolicy
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.experiments.figures import (
    DEFAULT_SEED,
    _LINE_LATENCIES,
    _commuter_trace,
    _timezone_trace,
)
from repro.experiments.runner import sweep_experiment
from repro.topology.generators import erdos_renyi, line


def _opt_line(n, rng):
    """The non-unit-latency line substrate of the OPT-based figures."""
    return line(n, seed=rng, unit_latency=False, latency_range=_LINE_LATENCIES)


@pytest.mark.figure("ext-online")
def test_online_shootout_vs_opt(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    lambdas = (1, 5, 20, 50) if bench_scale == "quick" else (1, 2, 5, 10, 20, 50)
    costs = CostModel.paper_default()

    def replicate(lam, rng):
        substrate = _opt_line(5, rng)
        trace = _commuter_trace(substrate, 200, int(lam), True, rng, period=4)
        opt_cost, _ = Opt.solve(substrate, trace, costs)
        out = {}
        for label, policy in (
            ("ONTH/OPT", OnTH()),
            ("ONBR/OPT", OnBR()),
            ("ONCONF/OPT", OnConf(max_servers=3)),
            ("WFA/OPT", WorkFunctionPolicy(max_servers=3)),
        ):
            run = simulate(substrate, policy, trace, costs, seed=rng)
            out[label] = run.total_cost / opt_cost
        return out

    result = run_once(
        benchmark,
        lambda: sweep_experiment(
            "ext-online", "online algorithms vs OPT (line graph, commuter dynamic)",
            "λ", lambdas, replicate, runs=runs, seed=DEFAULT_SEED,
            notes="WFA = metrical-task-system work function baseline (§VI)",
        ),
    )
    figure_report(result)

    for name in result.series_names:
        assert all(v >= 1.0 - 1e-9 for v in result.y(name))
    # the specialised heuristics should beat the generic MTS baseline overall
    assert sum(result.y("ONTH/OPT")) <= sum(result.y("WFA/OPT")) * 1.25


@pytest.mark.figure("ext-beam")
def test_beam_planner_quality_and_reach(benchmark, bench_scale, figure_report):
    runs = 3 if bench_scale == "paper" else 2
    big_rounds = 150 if bench_scale == "paper" else 100
    costs = CostModel.paper_default()

    def replicate(_x, rng):
        # quality leg: a 5-node instance where exact OPT is available
        small = _opt_line(5, rng)
        trace_small = _commuter_trace(small, 150, 10, True, rng, period=4)
        opt_cost, _ = Opt.solve(small, trace_small, costs)
        beam_small = simulate(small, BeamOpt(beam_width=64), trace_small, costs)
        # reach leg: 200 nodes, far beyond 3^n states
        big = erdos_renyi(200, seed=rng)
        trace_big = _timezone_trace(big, big_rounds, 10, rng, period=6)
        beam_big = simulate(big, BeamOpt(beam_width=24), trace_big, costs)
        offstat_big = simulate(big, OffStat(), trace_big, costs)
        return {
            "BEAM/OPT (n=5)": beam_small.total_cost / opt_cost,
            "BEAM/OFFSTAT (n=200)": beam_big.total_cost / offstat_big.total_cost,
        }

    result = run_once(
        benchmark,
        lambda: sweep_experiment(
            "ext-beam", "beam-search planner: quality vs OPT, reach beyond OPT",
            "metric", ["ratio"], replicate, runs=runs, seed=DEFAULT_SEED,
            notes="§IV-B sampling heuristic; ≥1 vs OPT by definition",
        ),
    )
    figure_report(result)

    assert result.y("BEAM/OPT (n=5)")[0] >= 1.0 - 1e-9
    assert result.y("BEAM/OPT (n=5)")[0] <= 1.2       # near-exact on tiny graphs
    assert result.y("BEAM/OFFSTAT (n=200)")[0] <= 1.5  # competitive at scale
