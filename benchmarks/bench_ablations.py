"""Ablation benchmarks for the design choices DESIGN.md §3 calls out.

Not paper figures — these quantify the knobs the reproduction had to fix:
routing strategy, inactive-cache size, ONBR's threshold factor, the
constant-β assumption, and demand correlation in the §II-D mobility model.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import ablations


@pytest.mark.figure("abl-routing")
def test_ablation_routing(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(sizes=(50, 100, 200), horizon=300, runs=5)
    else:
        params = dict(sizes=(50, 100), horizon=200, runs=3)
    result = run_once(benchmark, lambda: ablations.ablation_routing(**params))
    figure_report(result)
    # load-aware routing never loses under convex load
    assert sum(result.y("load-aware")) <= sum(result.y("nearest")) * 1.02


@pytest.mark.figure("abl-cache")
def test_ablation_cache_size(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(cache_sizes=(1, 2, 3, 5, 8), n=200, horizon=500, runs=5)
    else:
        params = dict(cache_sizes=(1, 3, 8), n=100, horizon=300, runs=3)
    result = run_once(benchmark, lambda: ablations.ablation_cache_size(**params))
    figure_report(result)
    for name in result.series_names:
        assert all(np.isfinite(result.y(name)))


@pytest.mark.figure("abl-threshold")
def test_ablation_threshold(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(factors=(0.5, 1.0, 2.0, 4.0, 8.0), n=200, horizon=500, runs=5)
    else:
        params = dict(factors=(0.5, 2.0, 8.0), n=100, horizon=300, runs=3)
    result = run_once(benchmark, lambda: ablations.ablation_threshold(**params))
    figure_report(result)
    assert all(v > 0 for v in result.y("ONBR total"))


@pytest.mark.figure("abl-migration")
def test_ablation_migration_model(benchmark, bench_scale, figure_report):
    runs = 5 if bench_scale == "paper" else 3
    result = run_once(
        benchmark, lambda: ablations.ablation_migration_model(runs=runs)
    )
    figure_report(result)
    for name in result.series_names:
        assert result.y(name)[0] > 0


@pytest.mark.figure("abl-mobility")
def test_ablation_mobility_correlation(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(correlations=(0.0, 0.25, 0.5, 0.75, 1.0), n=100,
                      horizon=400, runs=5)
    else:
        params = dict(correlations=(0.0, 0.5, 1.0), n=60, horizon=250, runs=3)
    result = run_once(
        benchmark, lambda: ablations.ablation_mobility_correlation(**params)
    )
    figure_report(result)
    ratios = result.y("OFFSTAT/ONTH")
    assert all(np.isfinite(ratios))


@pytest.mark.figure("abl-beta")
def test_ablation_beta_over_c(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(ratios=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0), n=100,
                      horizon=400, runs=5)
    else:
        params = dict(ratios=(0.1, 0.5, 1.0, 10.0), n=60, horizon=250, runs=3)
    result = run_once(benchmark, lambda: ablations.ablation_beta_over_c(**params))
    figure_report(result)
    migrations = result.y("migrations")
    assert migrations[-1] == 0.0          # β > c: never migrate (§II-C)
    assert migrations[0] > 0              # cheap β: migration is used
    assert migrations[0] >= migrations[-2]  # usage tapers as β/c grows
