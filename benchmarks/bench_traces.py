#!/usr/bin/env python
"""Throughput/memory harness for streaming traces.

Runs the same (substrate, scenario, policy) simulation four ways — via a
lazy :class:`StreamingTrace` and via the fully materialised ``Trace`` at
horizons of 10^5 and 10^6 rounds — each in its own subprocess so
``ru_maxrss`` measures that configuration alone. Records rounds/sec and
peak RSS for each, and enforces the subsystem's core guarantee as a CI
gate on the *marginal* memory of an extra round: a streaming run keeps
only the result ledger (10 typed columns, 80 bytes/round), so its RSS
slope across the 10x horizon jump must stay under ``MAX_STREAMING_BPR``
bytes/round, while the materialised run additionally holds every request
array (one numpy object + data per round) and is expected to sit well
above it. A second gate pins bit-identity at scale: both modes must
report the same total cost at every horizon.

The measured policy is ONBR: its best-response epochs close on a cost
threshold, so its internal request window is bounded and the trace layer
dominates the memory profile. (ONTH would not qualify — by §III-A its
large-epoch window spans everything since the last server addition, which
under converged demand is the remainder of the run.)

Usage::

    python benchmarks/bench_traces.py [OUTPUT.json]

Writes ``BENCH_traces.json`` (or OUTPUT) and exits non-zero if the
streaming memory gate or the cost-identity gate fails.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

HORIZONS = (100_000, 1_000_000)
MODES = ("streaming", "materialized")

#: Ceiling on the streaming RSS slope between the two horizons. The
#: ledger accounts for 80 bytes/round; the rest is slack for allocator
#: noise. A retained trace would add ~200+ bytes/round and blow through.
MAX_STREAMING_BPR = 192


def child(mode: str, horizon: int) -> int:
    """One measured configuration; prints a JSON record to stdout."""
    import resource

    import numpy as np

    from repro import OnBR, simulate
    from repro.topology.generators import line
    from repro.traces.arrivals import GammaArrivalScenario
    from repro.traces.streaming import StreamingTrace

    substrate = line(5, seed=0)
    scenario = GammaArrivalScenario(substrate, rate=2.0, cv=1.0, burst_length=10)

    started = time.perf_counter()
    if mode == "streaming":
        trace = StreamingTrace(scenario, horizon, seed=7)
    else:
        trace = scenario.generate(horizon, np.random.default_rng(7))
    result = simulate(substrate, OnBR(), trace, seed=0)
    elapsed = time.perf_counter() - started

    print(json.dumps({
        "mode": mode,
        "horizon": horizon,
        "elapsed_seconds": round(elapsed, 3),
        "rounds_per_second": round(horizon / elapsed),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "total_cost": result.total_cost,
    }))
    return 0


def measure(mode: str, horizon: int) -> dict:
    out = subprocess.run(
        [sys.executable, __file__, "--child", mode, str(horizon)],
        check=True, capture_output=True, text=True,
    ).stdout
    return json.loads(out)


def marginal_bytes_per_round(by_key: dict, mode: str) -> float:
    small = by_key[f"{mode}@{HORIZONS[0]}"]["peak_rss_kb"]
    large = by_key[f"{mode}@{HORIZONS[-1]}"]["peak_rss_kb"]
    return (large - small) * 1024 / (HORIZONS[-1] - HORIZONS[0])


def run() -> dict:
    records = [measure(mode, h) for h in HORIZONS for mode in MODES]
    by_key = {f"{r['mode']}@{r['horizon']}": r for r in records}

    streaming_bpr = marginal_bytes_per_round(by_key, "streaming")
    materialized_bpr = marginal_bytes_per_round(by_key, "materialized")
    costs_identical = all(
        by_key[f"streaming@{h}"]["total_cost"]
        == by_key[f"materialized@{h}"]["total_cost"]
        for h in HORIZONS
    )
    return {
        "scenario": "gamma arrivals on line:n=5 under ONBR",
        "horizons": list(HORIZONS),
        "runs": by_key,
        "streaming_marginal_bytes_per_round": round(streaming_bpr, 1),
        "materialized_marginal_bytes_per_round": round(materialized_bpr, 1),
        "max_streaming_bytes_per_round": MAX_STREAMING_BPR,
        "streaming_memory_flat": streaming_bpr <= MAX_STREAMING_BPR,
        "costs_identical": costs_identical,
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["--child"]:
        return child(argv[1], int(argv[2]))
    output = argv[0] if argv else "BENCH_traces.json"
    payload = run()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rates = {key: r["rounds_per_second"] for key, r in payload["runs"].items()}
    print(
        ", ".join(f"{key}: {rate} rounds/s" for key, rate in rates.items())
        + f"; marginal B/round streaming "
        + f"{payload['streaming_marginal_bytes_per_round']} vs materialised "
        + f"{payload['materialized_marginal_bytes_per_round']} -> {output}"
    )
    if not payload["streaming_memory_flat"]:
        print(
            "FAIL: streaming RSS slope "
            f"{payload['streaming_marginal_bytes_per_round']} B/round exceeds "
            f"{MAX_STREAMING_BPR} (not O(round) memory)", file=sys.stderr,
        )
        return 1
    if not payload["costs_identical"]:
        print("FAIL: streaming and materialised runs disagree on total "
              "cost", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
