"""Figure 9: cost vs λ, commuter scenario with static load (as Figure 8)."""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig09")
def test_fig09_cost_vs_lambda_static(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(lambdas=(1, 2, 5, 10, 20, 50), n=200, period=10,
                      horizon=900, runs=10)
    else:
        params = dict(lambdas=(1, 5, 20, 50), n=100, period=8, horizon=400, runs=3)
    result = run_once(benchmark, lambda: figures.figure09(**params))
    figure_report(result)

    assert sum(result.y("ONTH")) <= sum(result.y("ONBR-fixed")) * 1.05
    for name in result.series_names:
        ys = np.asarray(result.y(name))
        assert ys.max() <= 3.0 * ys.mean()
