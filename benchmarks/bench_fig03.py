"""Figure 3: algorithm cost vs network size, commuter dynamic load.

Paper caption: runtime 500 rounds, λ = 10, averaged over 5 runs; T grows
with network size. Expected shape: ONTH has lower total cost than both
ONBR variants (its cost grows slightly faster with n, but stays below).
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig03")
def test_fig03_cost_vs_size_dynamic(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(sizes=(100, 200, 400, 700, 1000), horizon=500, sojourn=10, runs=5)
    else:
        params = dict(sizes=(50, 100, 200, 400), horizon=300, sojourn=10, runs=3)
    result = run_once(benchmark, lambda: figures.figure03(**params))
    figure_report(result)

    onth = sum(result.y("ONTH"))
    onbr = sum(result.y("ONBR-fixed"))
    assert onth <= onbr * 1.05  # ONTH wins overall
    # cost grows with network size for every algorithm
    for name in result.series_names:
        ys = result.y(name)
        assert ys[-1] > ys[0]
