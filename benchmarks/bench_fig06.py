"""Figure 6: ONBR cost components vs network size in the β=400 > c=40 regime.

Paper caption: runtime 500 rounds, λ = 10, β = 400, c = 40, 5 runs.
Expected shape: the access cost dominates the total and grows with n;
migration+creation stays the small component (and contains no migrations
at all, since β > c makes them never beneficial).
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig06")
def test_fig06_onbr_cost_breakdown(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(sizes=(100, 200, 400, 700, 1000), horizon=500, sojourn=10, runs=5)
    else:
        params = dict(sizes=(50, 100, 200, 400), horizon=300, sojourn=10, runs=3)
    result = run_once(benchmark, lambda: figures.figure06(**params))
    figure_report(result)

    access = result.y("access")
    moves = result.y("migration+creation")
    running = result.y("running")
    total = result.y("total")
    # access dominates at the largest size and grows with n
    assert access[-1] > access[0]
    assert access[-1] > running[-1]
    assert access[-1] > moves[-1]
    # components sum to the total at every point
    for i in range(len(total)):
        assert access[i] + running[i] + moves[i] == pytest.approx(total[i])
