"""Figure 14: absolute OFFSTAT and OPT costs vs λ with β = 400 > c = 40."""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig14")
def test_fig14_absolute_costs_expensive_migration(
    benchmark, bench_scale, figure_report
):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure14(runs=runs))
    figure_report(result)

    offstat, opt = result.y("OFFSTAT"), result.y("OPT")
    assert all(o >= p - 1e-9 for o, p in zip(offstat, opt))
    assert opt[-1] == min(opt)
