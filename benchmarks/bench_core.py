#!/usr/bin/env python
"""Perf + bit-identity harness for the batched simulation core.

Benchmarks :func:`repro.core.batch.simulate_batched` against the scalar
:func:`repro.core.simulator.simulate` on three points:

* ``fig03-n400-trio`` / ``fig03-n1000-trio`` — the paper's Figure 3 shape:
  the ONTH/ONBR-fixed/ONBR-dyn trio sharing one commuter trace per
  replicate, at the sweep's n=400 point and the 1000-node headline point.
* ``routing-core-n1000-static`` — a static policy at n=1000, isolating the
  batched round loop (span routing + shared gather) from epoch evaluation.

Every point also checks *bit-identity*: all ten ledger columns of the
batched runs must equal the scalar runs exactly, which is the invariant
that lets the experiment layer switch paths transparently.

On speedup expectations: bit-identity pins every reduction to the scalar
path's exact summand sequences, so the batched path cannot shrink the
irreducible argmin/sum volume — it only removes redundant distance
gathers (scalar re-gathers columns per round and per epoch family) and
memoises epoch evaluations across sibling policies sharing a trace.
Measured honestly, that is ~2x on the trio points and ~3x on the routing
core; the committed gate floors below are set under those measurements
with CI-noise headroom, not at marketing numbers.

Usage::

    python benchmarks/bench_core.py [OUTPUT.json]

Writes ``BENCH_core.json`` (or OUTPUT) and exits non-zero when a gate
fails: any ledger divergence, or a speedup under its floor.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.api.registry import resolve_policy
from repro.core.batch import DistanceGather, simulate_batched
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi
from repro.workload.commuter import CommuterScenario, default_period_for

LEDGER_FIELDS = (
    "latency_cost", "load_cost", "running_cost", "migration_cost",
    "creation_cost", "migrations", "creations", "n_active",
    "n_inactive", "n_requests",
)

#: The fig03 trio: one shared commuter trace, three policies.
TRIO = (
    ("onth", {}),
    ("onbr", {}),
    ("onbr-dyn", {"dynamic_threshold": True}),
)

#: (name, n, horizon, replicate traces, policies, timing repeats, floor).
#: Floors are far enough under the measured speedups (~2.0x, ~2.3x, ~3x)
#: to absorb CI machine noise while still catching a path regression.
POINTS = (
    ("fig03-n400-trio", 400, 300, 2, TRIO, 3, 1.3),
    ("fig03-n1000-trio", 1000, 300, 1, TRIO, 2, 1.4),
    ("routing-core-n1000-static", 1000, 3000, 1, (("static", {}),), 3, 2.0),
)

SEED = 20110330


def _build_policy(name: str, kwargs: dict, substrate):
    if name == "static":
        return resolve_policy("static")(Configuration((substrate.center,), ()))
    if name == "onbr-dyn":
        return resolve_policy("onbr")(**kwargs)
    return resolve_policy(name)(**kwargs)


def _runs_identical(scalar_runs, batched_runs) -> bool:
    return all(
        np.array_equal(getattr(a, field), getattr(b, field))
        for a, b in zip(scalar_runs, batched_runs)
        for field in LEDGER_FIELDS
    )


def _bench_point(name, n, horizon, n_traces, policies, repeats, floor):
    rng = np.random.default_rng(SEED)
    substrate = erdos_renyi(n=n, p=min(1.0, 4.0 / n), seed=rng)
    substrate.distances  # materialise outside the timed region
    costs = CostModel.paper_default()
    scenario = CommuterScenario(substrate, period=default_period_for(n))
    traces = [scenario.generate(horizon, rng) for _ in range(n_traces)]

    def run_scalar():
        return [
            simulate(substrate, _build_policy(pname, kwargs, substrate),
                     trace, costs, seed=np.random.default_rng(0))
            for trace in traces
            for pname, kwargs in policies
        ]

    def run_batched():
        out = []
        for trace in traces:
            gather = DistanceGather(substrate, costs, trace)
            for pname, kwargs in policies:
                out.append(simulate_batched(
                    substrate, _build_policy(pname, kwargs, substrate),
                    trace, costs, seed=np.random.default_rng(0),
                    gather=gather,
                ))
        return out

    def best_of(fn):
        elapsed, result = [], None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            elapsed.append(time.perf_counter() - start)
        return min(elapsed), result

    scalar_seconds, scalar_runs = best_of(run_scalar)
    batched_seconds, batched_runs = best_of(run_batched)

    replicates = n_traces * len(policies)
    rounds = replicates * horizon
    speedup = scalar_seconds / batched_seconds
    return {
        "substrate_nodes": n,
        "horizon": horizon,
        "traces": n_traces,
        "policies": [pname for pname, _ in policies],
        "replicates": replicates,
        "timing_repeats": repeats,
        "scalar": {
            "seconds": round(scalar_seconds, 4),
            "rounds_per_sec": round(rounds / scalar_seconds, 1),
            "replicates_per_sec": round(replicates / scalar_seconds, 2),
        },
        "batched": {
            "seconds": round(batched_seconds, 4),
            "rounds_per_sec": round(rounds / batched_seconds, 1),
            "replicates_per_sec": round(replicates / batched_seconds, 2),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": floor,
        "speedup_ok": speedup >= floor,
        "bit_identical": _runs_identical(scalar_runs, batched_runs),
    }


def run() -> dict:
    points = {}
    for name, *args in POINTS:
        points[name] = _bench_point(name, *args)
    return {
        "seed": SEED,
        "scenario": "commuter",
        "points": points,
        "all_bit_identical": all(p["bit_identical"] for p in points.values()),
        "all_speedups_ok": all(p["speedup_ok"] for p in points.values()),
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_core.json"
    payload = run()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for name, point in payload["points"].items():
        print(
            f"{name}: scalar {point['scalar']['seconds']*1e3:.0f}ms, "
            f"batched {point['batched']['seconds']*1e3:.0f}ms "
            f"({point['speedup']:.2f}x, floor {point['speedup_floor']}x, "
            f"bit_identical={point['bit_identical']}) -> {output}"
        )
    if not payload["all_bit_identical"]:
        print("FAIL: batched ledgers diverged from scalar simulate",
              file=sys.stderr)
        return 1
    if not payload["all_speedups_ok"]:
        print("FAIL: batched speedup under its committed floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
