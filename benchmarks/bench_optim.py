#!/usr/bin/env python
"""Perf + quality harness for the optimizer-backed policy family.

Two sections:

* **Solve time per epoch vs instance size** — runs :class:`IlpPlacement`
  (and its LP relaxation) through the ordinary simulator on growing
  substrates and reports the wall-clock cost of one epoch re-solve. The
  gates are generous ceilings (~20-30x the measured times on a laptop):
  they are not performance marketing, they catch pathological regressions
  — a dense constraint matrix, a lost sparsity pattern, an accidental
  re-solve every round.
* **Heuristic/ILP cost ratio at a fixed CI target** — the ``optim``
  figure's paired sweep at 12 CRN replicates; the gate requires the
  paired 95% CI halfwidth of every heuristic/ILP ratio to be at most
  ``RATIO_HALFWIDTH_TARGET`` at every sweep point (the CRN pairing is
  what makes that target reachable at 12 replicates), and the LP/ILP
  ratio to stay near 1 (the deterministic rounding recovering the integer
  optimum at this scale).

Usage::

    python benchmarks/bench_optim.py [OUTPUT.json]

Writes ``BENCH_optim.json`` (or OUTPUT) and exits non-zero when a gate
fails.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.algorithms.optim import IlpPlacement
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.experiments.figures import figure_optim
from repro.topology.generators import erdos_renyi, line
from repro.workload.commuter import CommuterScenario, default_period_for

SEED = 20110330

#: (name, topology, nodes, horizon, epoch, per-solve ceiling in seconds).
POINTS = (
    ("line-n10", "line", 10, 60, 10, 0.20),
    ("er-n50", "erdos_renyi", 50, 60, 10, 0.30),
    ("er-n120", "erdos_renyi", 120, 60, 10, 0.60),
)

#: Paired 95% CI halfwidth every heuristic/ILP ratio must reach with the
#: 12 CRN replicates below.
RATIO_HALFWIDTH_TARGET = 0.15
RATIO_RUNS = 12
#: LP rounding must stay near the integer optimum at this scale.
LP_RATIO_TOLERANCE = 0.25


def _substrate(kind: str, n: int):
    if kind == "line":
        return line(n, seed=3, unit_latency=False, latency_range=(5.0, 20.0))
    return erdos_renyi(n=n, p=4.0 / n, seed=3)


def _bench_point(name, kind, n, horizon, epoch, ceiling):
    substrate = _substrate(kind, n)
    substrate.distances  # materialise outside the timed region
    scenario = CommuterScenario(substrate, period=default_period_for(max(n, 8)))
    trace = scenario.generate(horizon, np.random.default_rng(1))
    costs = CostModel.paper_default()
    solves = horizon // epoch

    timings = {}
    for label, relax in (("ilp", False), ("lp", True)):
        best = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            simulate(
                substrate,
                IlpPlacement(epoch=epoch, relax=relax),
                trace, costs, seed=0,
            )
            best = min(best, time.perf_counter() - started)
        timings[label] = {
            "seconds": round(best, 4),
            "seconds_per_solve": round(best / solves, 5),
        }

    per_solve = timings["ilp"]["seconds_per_solve"]
    return {
        "topology": kind,
        "substrate_nodes": n,
        "horizon": horizon,
        "epoch": epoch,
        "epoch_solves": solves,
        "timings": timings,
        "per_solve_ceiling": ceiling,
        "per_solve_ok": per_solve <= ceiling,
    }


def _bench_ratio():
    started = time.perf_counter()
    result = figure_optim(sojourns=(2, 5), horizon=40, runs=RATIO_RUNS)
    elapsed = time.perf_counter() - started

    comparisons = {}
    halfwidths_ok = True
    lp_ok = True
    for comparison in result.comparisons:
        halfwidths = [
            (high - low) / 2.0 for low, high in comparison.ci
        ]
        entry = {
            "ratio": [round(v, 4) for v in comparison.values],
            "ci_halfwidth": [round(h, 4) for h in halfwidths],
            "replicates": list(comparison.counts),
        }
        comparisons[comparison.contrast] = entry
        if any(h > RATIO_HALFWIDTH_TARGET for h in halfwidths):
            halfwidths_ok = False
        if comparison.contrast == "LP" and any(
            abs(v - 1.0) > LP_RATIO_TOLERANCE for v in comparison.values
        ):
            lp_ok = False
    return {
        "figure": "optim",
        "runs": RATIO_RUNS,
        "halfwidth_target": RATIO_HALFWIDTH_TARGET,
        "lp_ratio_tolerance": LP_RATIO_TOLERANCE,
        "seconds": round(elapsed, 3),
        "comparisons": comparisons,
        "halfwidths_ok": halfwidths_ok,
        "lp_ratio_ok": lp_ok,
    }


def run() -> dict:
    points = {}
    for name, *args in POINTS:
        points[name] = _bench_point(name, *args)
    ratio = _bench_ratio()
    return {
        "seed": SEED,
        "points": points,
        "ratio": ratio,
        "all_solve_times_ok": all(p["per_solve_ok"] for p in points.values()),
        "ratio_gates_ok": ratio["halfwidths_ok"] and ratio["lp_ratio_ok"],
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_optim.json"
    payload = run()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for name, point in payload["points"].items():
        ilp = point["timings"]["ilp"]["seconds_per_solve"]
        print(
            f"{name}: {ilp*1e3:.1f} ms/solve "
            f"(ceiling {point['per_solve_ceiling']*1e3:.0f} ms, "
            f"ok={point['per_solve_ok']}) -> {output}"
        )
    onth = payload["ratio"]["comparisons"].get("ONTH", {})
    print(
        f"optim ratios at {payload['ratio']['runs']} CRN replicates: "
        f"ONTH/ILP {onth.get('ratio')} "
        f"(halfwidths {onth.get('ci_halfwidth')}, "
        f"target {payload['ratio']['halfwidth_target']})"
    )
    if not payload["all_solve_times_ok"]:
        print("FAIL: an epoch re-solve exceeded its wall-clock ceiling",
              file=sys.stderr)
        return 1
    if not payload["ratio_gates_ok"]:
        print("FAIL: paired ratio CIs missed the fixed target "
              "(or LP rounding drifted from the integer optimum)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
