"""Figure 2: exemplary ONTH execution, commuter scenario with static load.

Paper caption: 1000 rounds, T = 12, network size 500, λ = 20. Expected
shape: the system converges quickly to a server count that is roughly
independent of how many access points the (fixed-volume) demand spreads
over, and quadratic load needs more servers.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig02")
def test_fig02_onth_trajectory_static(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(n=500, period=12, sojourn=20, horizon=1000, sample_every=25)
    else:
        params = dict(n=200, period=10, sojourn=10, horizon=400, sample_every=10)
    result = run_once(benchmark, lambda: figures.figure02(**params))
    figure_report(result)

    linear = np.asarray(result.series["servers (linear load)"])
    quadratic = np.asarray(result.series["servers (quadratic load)"])
    demand = np.asarray(result.series["requests/round"])
    # static load: constant volume per round
    assert np.unique(demand).size == 1
    # quadratic load requires more servers (paper's explicit claim)
    assert quadratic.max() >= linear.max()
    # steady state: the two halves have the same server-count profile (the
    # count follows the daily spread cycle but does not drift; see
    # EXPERIMENTS.md for the divergence note vs the paper's flat profile)
    half = linear.size // 2
    first, second = linear[:half], linear[half: 2 * half]
    assert abs(first.mean() - second.mean()) <= 0.35 * max(first.mean(), 1.0)
    assert second.max() <= linear.max()
