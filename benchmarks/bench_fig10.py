"""Figure 10: cost vs λ, time zone scenario with p = 50%.

Paper caption: runtime 900 rounds, T = 10, network size 200, 10 runs.
Expected shape: total cost decreases slightly with λ (fewer migrations
needed when hotspots dwell longer); ONTH best.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig10")
def test_fig10_cost_vs_lambda_timezones(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(lambdas=(1, 2, 5, 10, 20, 50), n=200, period=10,
                      horizon=900, runs=10)
    else:
        params = dict(lambdas=(1, 5, 20, 50), n=100, period=8, horizon=400, runs=3)
    result = run_once(benchmark, lambda: figures.figure10(**params))
    figure_report(result)

    assert sum(result.y("ONTH")) <= sum(result.y("ONBR-fixed")) * 1.05
    # mild downward trend for ONTH: last point no dearer than the first
    onth = result.y("ONTH")
    assert onth[-1] <= onth[0] * 1.15
