"""The Rocketfuel AS-7018 experiment (§V-B closing paragraph).

Paper numbers on the real AT&T map (time zones, c=400, β=40, Ra=2.5,
Ri=0.5, 600 rounds, λ=20, p=50%): OFFSTAT 26063.8, ONTH 44176.3 — "a
factor less than two higher" — and ONBR 111470.3. We assert the ordering
and the <2x ONTH/OFFSTAT gap on the synthetic AT&T-like substrate
(DESIGN.md §3 documents the substitution).
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("tabR")
def test_rocketfuel_as7018_totals(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(horizon=600, sojourn=20, runs=3)
    else:
        params = dict(horizon=400, sojourn=20, runs=2)
    result = run_once(benchmark, lambda: figures.rocketfuel_table(**params))
    figure_report(result)

    offstat = result.y("OFFSTAT")[0]
    onth = result.y("ONTH")[0]
    onbr = result.y("ONBR")[0]
    assert offstat <= onth            # static offline beats online ONTH
    assert onth <= 2.0 * offstat      # "a factor less than two higher"
    assert onth <= onbr * 1.05        # ONTH beats ONBR
