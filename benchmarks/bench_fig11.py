"""Figure 11: ONTH/OPT competitive ratio vs λ on 5-node (line) networks.

Paper caption: runtime 200 rounds, five nodes, 10 runs. Expected shape:
ratios are fairly low in all scenarios; the static-load commuter scenario
peaks at an intermediate λ.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig11")
def test_fig11_onth_vs_opt(benchmark, bench_scale, figure_report):
    if bench_scale == "paper":
        params = dict(lambdas=(1, 2, 5, 10, 20, 50, 100, 200), runs=10)
    else:
        params = dict(lambdas=(1, 5, 20, 50, 100, 200), runs=5)
    result = run_once(benchmark, lambda: figures.figure11(**params))
    figure_report(result)

    for name in result.series_names:
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)  # OPT is a true lower bound
        assert max(ys) <= 5.0                    # "fairly low" ratios
