#!/usr/bin/env python
"""Scaling/correctness harness for the work-queue execution backend.

Runs a fixed fig03 size sweep three ways — serial (the reference), and
drained through the SQLite work queue by 1 and by 4 OS worker processes —
and records the wall time of each. The queue-assembled figures must be
**bit-identical** to the serial result (the subsystem's core guarantee:
tasks carry only positions, seeds re-derive from the spec), and the
script exits non-zero on any divergence, making it a CI gate against
seed-layout or assembly regressions. The 1-vs-4-worker times track the
fan-out overhead of the broker itself.

Usage::

    python benchmarks/bench_queue.py [OUTPUT.json]

Writes ``BENCH_queue.json`` (or OUTPUT) with the per-configuration wall
times and bit-identity verdicts.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api.cache import ResultCache
from repro.api.experiment import run_sweep
from repro.experiments import figures
from repro.queue.broker import Broker
from repro.queue.worker import enqueue_sweep

#: A fixed fig03 target: each sweep point is one queue task, so the work
#: must dwarf per-worker interpreter startup (~1s) for the 4-worker run
#: to show its fan-out — 8 points of a few seconds each, still CI-sized.
FIG03_TARGET = dict(
    sizes=(60, 90, 120, 150, 180, 210, 240, 270),
    horizon=300, sojourn=10, runs=4, seed=2,
)

WORKER_COUNTS = (1, 4)


def target_spec():
    return figures._commuter_size_sweep(
        "fig03", "cost vs network size, commuter dynamic load", True,
        **FIG03_TARGET,
    )


def spawn_worker(queue: Path, cache_dir: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "worker",
            "--queue", str(queue), "--cache-dir", str(cache_dir),
            "--poll", "0.02", "--idle-exit", "2", "--quiet",
        ],
    )


def drain_with(workers: int, spec, serial_dict: dict) -> dict:
    """Enqueue the sweep, drain it with ``workers`` processes, verify."""
    with tempfile.TemporaryDirectory() as root:
        queue = Path(root) / "queue.db"
        cache = ResultCache(Path(root) / "cache")
        broker = Broker(queue)
        job_id = enqueue_sweep(broker, cache, spec)["job"]

        started = time.perf_counter()
        procs = [spawn_worker(queue, Path(root) / "cache")
                 for _ in range(workers)]
        while True:
            state = broker.job_state(job_id)
            if state is not None and state["status"] in ("done", "failed"):
                break
            time.sleep(0.02)
        elapsed = time.perf_counter() - started
        for proc in procs:
            proc.wait(timeout=60)

        assembled = cache.load(spec)
        return {
            "workers": workers,
            "elapsed_seconds": round(elapsed, 3),
            "job_status": state["status"],
            "bit_identical": (
                assembled is not None
                and assembled.to_dict() == serial_dict
            ),
        }


def run() -> dict:
    spec = target_spec()
    started = time.perf_counter()
    serial = run_sweep(spec)
    serial_elapsed = time.perf_counter() - started
    serial_dict = serial.to_dict()

    results = [drain_with(n, spec, serial_dict) for n in WORKER_COUNTS]
    by_count = {str(r["workers"]): r for r in results}
    return {
        "scenario": "fig03-queue",
        "params": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in FIG03_TARGET.items()},
        # wall times only mean something relative to the core count: on a
        # single-core box 4 workers time-slice the same work and lose
        "cpu_count": os.cpu_count(),
        "serial": {"elapsed_seconds": round(serial_elapsed, 3)},
        "queue": by_count,
        "speedup_4_over_1": round(
            by_count["1"]["elapsed_seconds"]
            / max(by_count["4"]["elapsed_seconds"], 1e-9),
            3,
        ),
        "all_bit_identical": all(r["bit_identical"] for r in results),
        "all_done": all(r["job_status"] == "done" for r in results),
    }


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    output = argv[0] if argv else "BENCH_queue.json"
    payload = run()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    times = {n: payload["queue"][n]["elapsed_seconds"] for n in payload["queue"]}
    print(
        f"serial {payload['serial']['elapsed_seconds']}s; queue "
        + ", ".join(f"{n} worker(s): {t}s" for n, t in times.items())
        + f" (4v1 speedup {payload['speedup_4_over_1']}x) -> {output}"
    )
    if not payload["all_done"]:
        print("FAIL: a queue-drained job did not finish", file=sys.stderr)
        return 1
    if not payload["all_bit_identical"]:
        print("FAIL: a queue-assembled figure diverged from the serial "
              "run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
