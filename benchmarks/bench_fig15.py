"""Figure 15: OFFSTAT/OPT ratio vs λ, commuter dynamic load.

Paper finding: the benefit of flexibility peaks (up to ≈2x) at moderate
dynamics and shrinks at both extremes; OPT is *relatively* better when
β > c.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


@pytest.mark.figure("fig15")
def test_fig15_ratio_dynamic(benchmark, bench_scale, figure_report):
    runs = 10 if bench_scale == "paper" else 5
    result = run_once(benchmark, lambda: figures.figure15(runs=runs))
    figure_report(result)

    for name in ("β<c", "β>c"):
        ys = result.y(name)
        assert all(v >= 1.0 - 1e-9 for v in ys)
        # hump: some interior point beats the static extreme (λ = horizon)
        assert max(ys[:-1]) > ys[-1]
        # static extreme: flexibility worthless, ratio back near 1
        assert ys[-1] <= 1.1
    # β > c profits more from flexibility (the paper's observation)
    assert sum(result.y("β>c")) >= sum(result.y("β<c"))
