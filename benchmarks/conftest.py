"""Benchmark harness configuration.

Each benchmark regenerates one figure/table of the paper (see DESIGN.md §4)
and prints the reproduced series as an ASCII table in the terminal summary,
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` doubles as
the experiment report.

Scale control: set ``REPRO_BENCH_SCALE=paper`` to run the exact caption
parameters (several minutes per network-size figure); the default ``quick``
profile shrinks sizes/runs while preserving every qualitative shape the
assertions check.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.reporting import format_figure
from repro.experiments.runner import FigureResult

_REPORTS: list[str] = []


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark reproducing a paper figure"
    )


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active scale profile: ``quick`` (default) or ``paper``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'quick' or 'paper', got {scale!r}"
        )
    return scale


@pytest.fixture
def figure_report():
    """Collect a FigureResult to be printed in the terminal summary."""

    def _report(result: FigureResult) -> FigureResult:
        _REPORTS.append(format_figure(result))
        return result

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced figures", sep="=")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
